// google-benchmark: llrp-lite wire codec throughput — the per-read cost
// of the SDK boundary (encode on the reader, frame + decode on the host),
// plus the fault path: what corruption injection and framer resync cost
// when the robustness machinery is actually exercised.
#include <benchmark/benchmark.h>

#include "llrp/fault_channel.hpp"
#include "llrp/message.hpp"
#include "llrp/params.hpp"
#include "llrp/transport.hpp"

using namespace tagbreathe;

namespace {

std::vector<llrp::TagReportEntry> batch(std::size_t n) {
  std::vector<llrp::TagReportEntry> entries;
  for (std::size_t i = 0; i < n; ++i) {
    core::TagRead r;
    r.epc = rfid::Epc96::from_user_tag(1 + i % 4,
                                       static_cast<std::uint32_t>(i % 3));
    r.time_s = static_cast<double>(i) * 0.016;
    r.antenna_id = static_cast<std::uint8_t>(1 + i % 2);
    r.channel_index = static_cast<std::uint16_t>(i % 10);
    r.rssi_dbm = -60.0;
    r.phase_rad = 1.5;
    r.doppler_hz = 0.25;
    entries.push_back(llrp::to_wire(r));
  }
  return entries;
}

void BM_EncodeTagReports(benchmark::State& state) {
  const auto entries = batch(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto body = llrp::encode_tag_reports(entries);
    benchmark::DoNotOptimize(body.data());
  }
  state.counters["reads/s"] = benchmark::Counter(
      static_cast<double>(entries.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EncodeTagReports)->Arg(8)->Arg(64)->Arg(512);

void BM_DecodeTagReports(benchmark::State& state) {
  const auto body =
      llrp::encode_tag_reports(batch(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    auto entries = llrp::decode_tag_reports(body);
    benchmark::DoNotOptimize(entries.data());
  }
  state.counters["reads/s"] = benchmark::Counter(
      static_cast<double>(state.range(0)), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DecodeTagReports)->Arg(8)->Arg(64)->Arg(512);

void BM_FramerRoundTrip(benchmark::State& state) {
  llrp::Message m;
  m.type = llrp::MessageType::RoAccessReport;
  m.body = llrp::encode_tag_reports(batch(64));
  const auto wire = llrp::encode_message(m);
  for (auto _ : state) {
    llrp::MessageFramer framer;
    framer.feed(wire);
    llrp::Message out;
    framer.next(out);
    benchmark::DoNotOptimize(out.body.data());
  }
}
BENCHMARK(BM_FramerRoundTrip);

// Fault-injection overhead: a report-sized frame pushed through the
// FaultyChannel under a corruption-heavy plan. This is the per-byte tax
// every transported byte pays when fault injection is armed (the
// quiet-plan fast path short-circuits to the inner channel).
void BM_FaultyChannelWrite(benchmark::State& state) {
  llrp::Message m;
  m.type = llrp::MessageType::RoAccessReport;
  m.body = llrp::encode_tag_reports(batch(64));
  const auto wire = llrp::encode_message(m);

  llrp::DuplexChannel inner;
  llrp::FaultPlan plan;
  plan.seed = 99;
  plan.byte_drop_prob = 0.001;
  plan.bit_flip_prob = 0.01;
  plan.latency_burst_prob = 0.02;
  plan.latency_s = 0.1;
  llrp::FaultyChannel channel(inner, plan);
  double now = 0.0;
  for (auto _ : state) {
    channel.write(llrp::Side::Client, wire);
    now += 0.05;
    channel.advance_to(now);  // release latency holds
    auto out = inner.read(llrp::Side::Reader);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["bytes/s"] = benchmark::Counter(
      static_cast<double>(wire.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FaultyChannelWrite);

// Resync throughput: a multi-frame stream with every other header
// corrupted. The framer must skip to the next plausible header each
// time — the worst-case steady state of a noisy wire, and the path a
// hostile stream drives hardest.
void BM_FramerResyncCorrupted(benchmark::State& state) {
  llrp::Message m;
  m.type = llrp::MessageType::RoAccessReport;
  m.body = llrp::encode_tag_reports(batch(8));
  const auto frame = llrp::encode_message(m);

  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 32; ++i) {
    const std::size_t at = stream.size();
    stream.insert(stream.end(), frame.begin(), frame.end());
    if (i % 2 == 0) stream[at] ^= 0xFF;  // wreck the version/type byte
  }
  for (auto _ : state) {
    llrp::MessageFramer framer;
    framer.feed(stream);
    llrp::Message out;
    std::size_t decoded = 0;
    while (framer.next(out)) ++decoded;
    benchmark::DoNotOptimize(decoded);
  }
  state.counters["bytes/s"] = benchmark::Counter(
      static_cast<double>(stream.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FramerResyncCorrupted);

}  // namespace

BENCHMARK_MAIN();
