// google-benchmark: llrp-lite wire codec throughput — the per-read cost
// of the SDK boundary (encode on the reader, frame + decode on the host).
#include <benchmark/benchmark.h>

#include "llrp/message.hpp"
#include "llrp/params.hpp"

using namespace tagbreathe;

namespace {

std::vector<llrp::TagReportEntry> batch(std::size_t n) {
  std::vector<llrp::TagReportEntry> entries;
  for (std::size_t i = 0; i < n; ++i) {
    core::TagRead r;
    r.epc = rfid::Epc96::from_user_tag(1 + i % 4,
                                       static_cast<std::uint32_t>(i % 3));
    r.time_s = static_cast<double>(i) * 0.016;
    r.antenna_id = static_cast<std::uint8_t>(1 + i % 2);
    r.channel_index = static_cast<std::uint16_t>(i % 10);
    r.rssi_dbm = -60.0;
    r.phase_rad = 1.5;
    r.doppler_hz = 0.25;
    entries.push_back(llrp::to_wire(r));
  }
  return entries;
}

void BM_EncodeTagReports(benchmark::State& state) {
  const auto entries = batch(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto body = llrp::encode_tag_reports(entries);
    benchmark::DoNotOptimize(body.data());
  }
  state.counters["reads/s"] = benchmark::Counter(
      static_cast<double>(entries.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EncodeTagReports)->Arg(8)->Arg(64)->Arg(512);

void BM_DecodeTagReports(benchmark::State& state) {
  const auto body =
      llrp::encode_tag_reports(batch(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    auto entries = llrp::decode_tag_reports(body);
    benchmark::DoNotOptimize(entries.data());
  }
  state.counters["reads/s"] = benchmark::Counter(
      static_cast<double>(state.range(0)), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DecodeTagReports)->Arg(8)->Arg(64)->Arg(512);

void BM_FramerRoundTrip(benchmark::State& state) {
  llrp::Message m;
  m.type = llrp::MessageType::RoAccessReport;
  m.body = llrp::encode_tag_reports(batch(64));
  const auto wire = llrp::encode_message(m);
  for (auto _ : state) {
    llrp::MessageFramer framer;
    framer.feed(wire);
    llrp::Message out;
    framer.next(out);
    benchmark::DoNotOptimize(out.body.data());
  }
}
BENCHMARK(BM_FramerRoundTrip);

}  // namespace

BENCHMARK_MAIN();
