// google-benchmark telemetry benchmarks (ISSUE 7): EventBus fan-out
// into mixed-filter/mixed-policy subscriber pools, the framed wire
// codec round trip, and a full TelemetryService pump over in-memory
// connections — the per-event cost ceiling the ward dashboard pays.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "llrp/transport.hpp"
#include "telemetry/event_bus.hpp"
#include "telemetry/service.hpp"
#include "telemetry/wire.hpp"

using namespace tagbreathe;
using namespace tagbreathe::telemetry;

namespace {

constexpr std::size_t kUsers = 64;
constexpr std::size_t kShards = 4;

core::PipelineEvent canned_event(std::size_t i) {
  core::PipelineEvent e;
  e.kind = i % 97 == 0 ? core::PipelineEventKind::ApneaAlert
                       : core::PipelineEventKind::RateUpdate;
  e.user_id = static_cast<std::uint64_t>(i % kUsers) + 1;
  e.time_s = 0.01 * static_cast<double>(i);
  e.rate_bpm = 12.0;
  e.reliable = true;
  e.health = core::SignalHealth::Ok;
  return e;
}

FilterSpec filter_of(std::size_t i) {
  switch (i % 4) {
    case 0: return {FilterKind::All, 0};
    case 1: return {FilterKind::User, static_cast<std::uint64_t>(i % kUsers) + 1};
    case 2: return {FilterKind::Ward, static_cast<std::uint64_t>(i % 8)};
    default: return {FilterKind::AlarmOnly, 0};
  }
}

/// Publish -> filter -> bounded-enqueue -> drain across a subscriber
/// pool cycling all filters and overflow policies.
void BM_TelemetryFanout(benchmark::State& state) {
  const auto subscribers = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kEvents = 1 << 14;
  const auto ward_of = [](std::uint64_t user) {
    return static_cast<std::uint32_t>((user - 1) / 8);
  };

  for (auto _ : state) {
    EventBusConfig cfg;
    cfg.queue_capacity = 128;
    EventBus bus(cfg, ward_of);
    std::vector<std::uint64_t> subs;
    subs.reserve(subscribers);
    for (std::size_t i = 0; i < subscribers; ++i)
      subs.push_back(bus.subscribe(
          filter_of(i), static_cast<OverflowPolicy>(i % kOverflowPolicyCount)));

    std::vector<TelemetryEvent> out;
    std::uint64_t delivered = 0;
    for (std::size_t i = 0; i < kEvents; ++i) {
      bus.publish(static_cast<std::uint16_t>(i % kShards), canned_event(i));
      if ((i & 255u) == 255u) {
        bus.tick();
        for (const std::uint64_t id : subs) {
          out.clear();
          delivered += bus.drain(id, out, 256).delivered;
        }
      }
    }
    bus.tick();
    for (const std::uint64_t id : subs) {
      out.clear();
      delivered += bus.drain(id, out, 1 << 20).delivered;
    }
    benchmark::DoNotOptimize(delivered);
    benchmark::DoNotOptimize(bus.counters().fanout_enqueued);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(kEvents), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TelemetryFanout)
    ->ArgName("subscribers")
    ->Arg(16)
    ->Arg(256)
    ->Arg(2048)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Encode + reparse the Event frame (the hot frame type) through the
/// incremental FrameParser.
void BM_WireCodec(benchmark::State& state) {
  constexpr std::size_t kFrames = 1 << 12;
  std::vector<Frame> frames;
  frames.reserve(kFrames);
  for (std::size_t i = 0; i < kFrames; ++i)
    frames.push_back(EventFrame{make_event(i + 1, i % kShards,
                                           canned_event(i))});

  for (auto _ : state) {
    FrameParser parser;
    std::size_t parsed = 0;
    for (const Frame& frame : frames) {
      const std::vector<std::uint8_t> bytes = encode_frame(frame);
      parser.feed(bytes);
      while (parser.next()) ++parsed;
    }
    benchmark::DoNotOptimize(parsed);
  }
  state.counters["frames/s"] = benchmark::Counter(
      static_cast<double>(kFrames), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WireCodec)->Unit(benchmark::kMillisecond);

/// End-to-end service pump: framed subscribers on in-memory channels,
/// publishes interleaved with pumps — what the CI soak job pays per
/// pump at dashboard scale.
void BM_ServicePump(benchmark::State& state) {
  const auto clients = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kEvents = 1 << 12;
  const auto ward_of = [](std::uint64_t user) {
    return static_cast<std::uint32_t>((user - 1) / 8);
  };

  for (auto _ : state) {
    TelemetryServiceConfig cfg;
    cfg.bus.queue_capacity = 128;
    cfg.heartbeat_timeout_s = 0.0;  // no timeouts in the hot loop
    TelemetryService service(cfg, ward_of);
    std::vector<std::unique_ptr<llrp::DuplexChannel>> channels;
    channels.reserve(clients);
    for (std::size_t i = 0; i < clients; ++i) {
      channels.push_back(std::make_unique<llrp::DuplexChannel>());
      llrp::DuplexChannel& ch = *channels.back();
      service.accept(ch, 0.0);
      ch.write(llrp::Side::Client,
               encode_frame(SubscribeFrame{filter_of(i),
                                           OverflowPolicy::DropOldest, 0}));
    }
    service.pump(0.0);

    double now = 0.0;
    for (std::size_t i = 0; i < kEvents; ++i) {
      service.bus().publish(static_cast<std::uint16_t>(i % kShards),
                            canned_event(i));
      if ((i & 127u) == 127u) {
        now += 0.25;
        service.pump(now);
        // Clients consume so send-side backpressure never parks them.
        for (auto& ch : channels) ch->read(llrp::Side::Client);
      }
    }
    service.pump(now + 0.25);
    benchmark::DoNotOptimize(service.counters().events_sent);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(kEvents), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServicePump)
    ->ArgName("clients")
    ->Arg(8)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

// Custom main: mirror results as JSON into BENCH_telemetry.json
// (override with TAGBREATHE_BENCH_JSON or an explicit --benchmark_out)
// so CI keeps a machine-readable fan-out scaling record.
int main(int argc, char** argv) {
  const char* json_path = std::getenv("TAGBREATHE_BENCH_JSON");
  std::string out_flag =
      std::string("--benchmark_out=") +
      (json_path != nullptr ? json_path : "BENCH_telemetry.json");
  std::string format_flag = "--benchmark_out_format=json";
  std::vector<char*> args;
  args.push_back(argv[0]);
  args.push_back(out_flag.data());
  args.push_back(format_flag.data());
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
