// The Sec. IV-A characterisation setup shared by the Fig. 2-8 benches:
// one passive tag on a naturally breathing user sitting 2 m from the
// antenna, low-level data collected for 25 s at ~64 Hz.
#pragma once

#include <vector>

#include "core/monitor.hpp"
#include "core/phase_preprocess.hpp"
#include "experiments/scenario.hpp"

namespace tagbreathe::bench {

struct Characterization {
  core::ReadStream reads;
  experiments::ScenarioConfig config;
  double true_rate_bpm = 0.0;
};

/// Runs the initial-experiment capture. Breathing is set to ~15 bpm so
/// ~6 breaths fall inside the 25 s window, as in the paper's traces.
inline Characterization run_characterization(std::uint64_t seed = 42) {
  experiments::ScenarioConfig cfg;
  cfg.distance_m = 2.0;
  cfg.tags_per_user = 1;
  cfg.duration_s = 25.0;
  experiments::UserSpec user;
  user.rate_bpm = 15.0;
  cfg.users = {user};
  cfg.seed = seed;

  Characterization out;
  out.config = cfg;
  experiments::Scenario scenario(cfg);
  out.reads = scenario.run();
  out.true_rate_bpm = scenario.true_rate_bpm(0);
  return out;
}

}  // namespace tagbreathe::bench
