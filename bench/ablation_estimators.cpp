// Ablation: estimator and filter design choices (DESIGN.md Sec. 5,
// items 2/3/4) plus the RSSI/Doppler baselines of Sec. IV-A.
//
//  - zero-crossing over LPF (the paper's estimator) vs raw FFT peak
//    (rejected for its 1/w resolution) vs interpolated FFT peak,
//  - FFT low-pass vs FIR low-pass (the paper's stated alternative),
//  - adaptive band on/off (this implementation's robustness extension),
//  - M (buffered crossings) sweep around the paper's 7,
//  - RSSI-based and Doppler-based extraction baselines.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/baselines.hpp"
#include "core/metrics.hpp"
#include "core/rate_estimator.hpp"
#include "experiments/runner.hpp"

using namespace tagbreathe;

namespace {

/// Short-window scenario (25 s) where the 1/w quantisation bites.
experiments::ScenarioConfig short_window_cfg(double rate_bpm,
                                             std::uint64_t seed) {
  experiments::ScenarioConfig cfg;
  cfg.duration_s = 25.0;
  experiments::UserSpec user;
  user.rate_bpm = rate_bpm;
  cfg.users = {user};
  cfg.seed = seed;
  return cfg;
}

}  // namespace

int main() {
  bench::print_header("Ablation", "Estimators, filters and baselines");

  constexpr int kTrials = 5;
  const double rates[] = {7.0, 11.0, 13.0, 17.0};

  std::printf("\n[A] zero-crossing vs FFT peak (25 s windows -> 2.4 bpm bins)\n");
  common::ConsoleTable ta(
      {"true bpm", "zero-crossing", "fft raw bin", "fft interpolated"});
  for (double rate : rates) {
    common::RunningStats zc_err, raw_err, interp_err;
    for (int t = 0; t < kTrials; ++t) {
      experiments::Scenario scenario(
          short_window_cfg(rate, 7300 + static_cast<std::uint64_t>(rate) +
                                     static_cast<std::uint64_t>(t) * 101));
      const auto reads = scenario.run();
      core::BreathMonitor monitor;
      const auto analyses = monitor.analyze(reads);
      if (analyses.empty()) continue;
      const auto& a = analyses[0];
      zc_err.add(core::rate_error_bpm(a.rate.rate_bpm, rate));
      core::FftPeakConfig raw;
      raw.raw_bin = true;
      raw_err.add(core::rate_error_bpm(
          core::fft_peak_rate_bpm(a.fused_track, a.track_rate_hz, raw),
          rate));
      core::FftPeakConfig interp;
      interp.raw_bin = false;
      interp_err.add(core::rate_error_bpm(
          core::fft_peak_rate_bpm(a.fused_track, a.track_rate_hz, interp),
          rate));
    }
    ta.add_row({common::fmt(rate, 0), common::fmt(zc_err.mean(), 2),
                common::fmt(raw_err.mean(), 2),
                common::fmt(interp_err.mean(), 2)});
  }
  ta.print();
  std::printf("(mean |error| in bpm; raw FFT bins quantise to 2.4 bpm as the "
              "paper warns)\n");

  std::printf("\n[B] FFT low-pass vs FIR low-pass filtfilt (Table-I defaults)\n");
  common::ConsoleTable tb({"filter", "accuracy", "err [bpm]"});
  for (core::FilterKind kind :
       {core::FilterKind::FftLowpass, core::FilterKind::FirLowpass}) {
    experiments::ScenarioConfig cfg;
    cfg.seed = 7400;
    core::MonitorConfig mc;
    mc.extractor.filter = kind;
    const auto agg = experiments::run_trials(cfg, kTrials, mc);
    tb.add_row({core::filter_kind_name(kind),
                common::fmt(agg.accuracy.mean(), 3),
                common::fmt(agg.error_bpm.mean(), 2)});
  }
  tb.print();

  std::printf("\n[C] adaptive band (this repo's extension) on/off, 60 deg case\n");
  common::ConsoleTable tc({"extractor", "accuracy", "err [bpm]"});
  for (bool adaptive : {true, false}) {
    experiments::ScenarioConfig cfg;
    cfg.users = {experiments::UserSpec()};
    cfg.users[0].orientation_deg = 60.0;
    cfg.seed = 7500;
    core::MonitorConfig mc;
    mc.extractor.adaptive_band = adaptive;
    const auto agg = experiments::run_trials(cfg, kTrials, mc);
    tc.add_row({adaptive ? "ACF-seeded band-pass" : "paper plain 0.67 Hz LPF",
                common::fmt(agg.accuracy.mean(), 3),
                common::fmt(agg.error_bpm.mean(), 2)});
  }
  tc.print();

  std::printf("\n[D] M (buffered zero crossings, Eq. 5) sweep\n");
  common::ConsoleTable td({"M", "accuracy", "err [bpm]"});
  for (int m : {3, 5, 7, 9, 11}) {
    experiments::ScenarioConfig cfg;
    cfg.seed = 7600;
    core::MonitorConfig mc;
    mc.rate.buffered_crossings = m;
    const auto agg = experiments::run_trials(cfg, kTrials, mc);
    td.add_row({std::to_string(m), common::fmt(agg.accuracy.mean(), 3),
                common::fmt(agg.error_bpm.mean(), 2)});
  }
  td.print();

  std::printf("\n[E] low-level-data baselines (Sec. IV-A): phase vs RSSI vs "
              "Doppler, Table-I defaults\n");
  common::ConsoleTable te({"source", "mean err [bpm]", "accuracy"});
  {
    common::RunningStats phase_err, phase_acc, rssi_err, rssi_acc,
        doppler_err, doppler_acc;
    for (int t = 0; t < kTrials; ++t) {
      experiments::ScenarioConfig cfg;
      cfg.seed = 7700 + static_cast<std::uint64_t>(t) * 997;
      experiments::Scenario scenario(cfg);
      const double truth = scenario.true_rate_bpm(0);
      const auto reads = scenario.run();

      core::BreathMonitor monitor;
      const auto analyses = monitor.analyze(reads);
      if (!analyses.empty()) {
        phase_err.add(core::rate_error_bpm(analyses[0].rate.rate_bpm, truth));
        phase_acc.add(
            core::breathing_rate_accuracy(analyses[0].rate.rate_bpm, truth));
      }
      core::BaselineConfig rssi_cfg;
      rssi_cfg.kind = core::BaselineKind::Rssi;
      const auto rssi = core::analyze_baseline(reads, rssi_cfg);
      if (!rssi.empty()) {
        rssi_err.add(core::rate_error_bpm(rssi[0].rate_bpm, truth));
        rssi_acc.add(core::breathing_rate_accuracy(rssi[0].rate_bpm, truth));
      }
      core::BaselineConfig dop_cfg;
      dop_cfg.kind = core::BaselineKind::Doppler;
      const auto dop = core::analyze_baseline(reads, dop_cfg);
      if (!dop.empty()) {
        doppler_err.add(core::rate_error_bpm(dop[0].rate_bpm, truth));
        doppler_acc.add(
            core::breathing_rate_accuracy(dop[0].rate_bpm, truth));
      }
    }
    te.add_row({"phase (TagBreathe)", common::fmt(phase_err.mean(), 2),
                common::fmt(phase_acc.mean(), 3)});
    te.add_row({"RSSI baseline", common::fmt(rssi_err.mean(), 2),
                common::fmt(rssi_acc.mean(), 3)});
    te.add_row({"Doppler baseline", common::fmt(doppler_err.mean(), 2),
                common::fmt(doppler_acc.mean(), 3)});
  }
  te.print();
  return 0;
}
