// Ablation: the fusion design choices (DESIGN.md Sec. 5, items 1/5/6).
//
//  - tags per user 1 vs 2 vs 3 (Table I range) at increasing range,
//  - low-level fusion vs best-single-stream,
//  - antenna selection vs fuse-everything with 2 antennas.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "experiments/runner.hpp"

using namespace tagbreathe;

int main() {
  bench::print_header("Ablation", "Multi-tag fusion and antenna selection");

  constexpr int kTrials = 6;

  std::printf("\n[A] tags per user, benign vs weak-signal geometry\n");
  std::printf("    (benign: facing @4 m; weak: 55 deg orientation @4 m —\n"
              "     fusion's value shows where single streams are marginal)\n");
  common::ConsoleTable ta(
      {"geometry", "1 tag", "2 tags", "3 tags"});
  for (double orientation : {0.0, 55.0}) {
    std::vector<std::string> row{orientation == 0.0 ? "facing (benign)"
                                                    : "55 deg (weak)"};
    for (int tags = 1; tags <= 3; ++tags) {
      experiments::ScenarioConfig cfg;
      cfg.users[0].orientation_deg = orientation;
      cfg.tags_per_user = tags;
      cfg.seed = 7000 + static_cast<std::uint64_t>(orientation) * 10 +
                 static_cast<std::uint64_t>(tags);
      const auto agg = experiments::run_trials(cfg, kTrials);
      row.push_back(common::fmt(agg.accuracy.mean(), 3));
    }
    ta.add_row(row);
  }
  ta.print();

  std::printf("\n[B] low-level fusion vs best single stream (3 tags, 55 deg)\n");
  common::ConsoleTable tb({"pipeline", "accuracy", "err [bpm]"});
  for (bool fuse : {true, false}) {
    experiments::ScenarioConfig cfg;
    cfg.users[0].orientation_deg = 55.0;
    cfg.seed = 7100;
    core::MonitorConfig mc;
    mc.fuse_tags = fuse;
    const auto agg = experiments::run_trials(cfg, kTrials, mc);
    tb.add_row({fuse ? "fused (Eq. 6-7)" : "best single tag",
                common::fmt(agg.accuracy.mean(), 3),
                common::fmt(agg.error_bpm.mean(), 2)});
  }
  tb.print();

  std::printf("\n[C] antenna selection (2 antennas, user faces antenna 1)\n");
  common::ConsoleTable tc({"policy", "accuracy", "err [bpm]"});
  for (bool select : {true, false}) {
    experiments::ScenarioConfig cfg;
    cfg.num_antennas = 2;
    cfg.seed = 7200;
    core::MonitorConfig mc;
    mc.select_antenna = select;
    const auto agg = experiments::run_trials(cfg, kTrials, mc);
    tc.add_row({select ? "best antenna (Sec. IV-D.3)" : "fuse all antennas",
                common::fmt(agg.accuracy.mean(), 3),
                common::fmt(agg.error_bpm.mean(), 2)});
  }
  tc.print();
  return 0;
}
