// google-benchmark end-to-end benchmarks: full simulate+analyse trials
// and the analysis stage alone (the realtime budget that matters for a
// live deployment — the paper's pipeline ran in realtime on a laptop).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <span>
#include <string>
#include <memory>
#include <thread>
#include <vector>

#include "common/units.hpp"
#include "core/analysis_pool.hpp"
#include "core/ingest.hpp"
#include "core/monitor.hpp"
#include "core/pipeline.hpp"
#include "experiments/runner.hpp"
#include "signal/simd/dispatch.hpp"

using namespace tagbreathe;

namespace {

core::ReadStream canned_reads(int users, double duration_s) {
  experiments::ScenarioConfig cfg;
  cfg.users.clear();
  for (int u = 0; u < users; ++u) {
    experiments::UserSpec user;
    user.rate_bpm = 10.0 + 2.0 * u;
    cfg.users.push_back(user);
  }
  cfg.duration_s = duration_s;
  cfg.seed = 11;
  experiments::Scenario scenario(cfg);
  return scenario.run();
}

void BM_SimulateTrial(benchmark::State& state) {
  // Full 120 s radio simulation (slot-level Gen2 + PHY).
  for (auto _ : state) {
    experiments::ScenarioConfig cfg;
    cfg.users = {experiments::UserSpec()};
    cfg.seed = 17;
    experiments::Scenario scenario(cfg);
    auto reads = scenario.run();
    benchmark::DoNotOptimize(reads.data());
  }
}
BENCHMARK(BM_SimulateTrial)->Unit(benchmark::kMillisecond);

void BM_AnalyzeWindow(benchmark::State& state) {
  const int users = static_cast<int>(state.range(0));
  const auto reads = canned_reads(users, 120.0);
  core::BreathMonitor monitor;
  for (auto _ : state) {
    auto analyses = monitor.analyze(reads);
    benchmark::DoNotOptimize(analyses.data());
  }
  state.counters["reads"] = static_cast<double>(reads.size());
  state.counters["reads/s"] = benchmark::Counter(
      static_cast<double>(reads.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AnalyzeWindow)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_RealtimePipelineFeed(benchmark::State& state) {
  const auto reads = canned_reads(1, 120.0);
  for (auto _ : state) {
    core::PipelineConfig cfg;
    core::RealtimePipeline pipeline(cfg, nullptr);
    for (const auto& r : reads) pipeline.push(r);
    benchmark::DoNotOptimize(pipeline.latest_size());
  }
  state.counters["reads/s"] = benchmark::Counter(
      static_cast<double>(reads.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RealtimePipelineFeed)->Unit(benchmark::kMillisecond);

void BM_IngestQueueThroughput(benchmark::State& state) {
  // Contended producers hammering the bounded MPSC ingest queue while
  // the benchmark thread drains — the reader-pump vs analysis hand-off
  // under burst overload. Reads shed by DropOldest still count as
  // processed work (that is the policy doing its job).
  const int producers = static_cast<int>(state.range(0));
  constexpr std::size_t kReadsPerProducer = 8192;
  core::TagRead read;
  read.epc = rfid::Epc96::from_user_tag(1, 1);
  read.phase_rad = 1.0;

  for (auto _ : state) {
    core::IngestQueue queue(1024, core::BackpressurePolicy::DropOldest);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(producers));
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&queue, read]() mutable {
        for (std::size_t i = 0; i < kReadsPerProducer; ++i) {
          read.time_s = static_cast<double>(i);
          queue.push(read);
        }
      });
    }
    std::vector<core::TagRead> out;
    const std::size_t total =
        static_cast<std::size_t>(producers) * kReadsPerProducer;
    std::size_t seen = 0;
    while (seen < total) {
      out.clear();
      queue.drain(out, 0.0);
      const auto counters = queue.counters();
      seen = counters.drained + counters.shed_oldest;
    }
    for (auto& t : threads) t.join();
    benchmark::DoNotOptimize(queue.counters().enqueued);
  }
  state.counters["reads/s"] = benchmark::Counter(
      static_cast<double>(producers) * kReadsPerProducer,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IngestQueueThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- multi-user scaling: the parallel analysis engine -----------------------
//
// The canned radio simulation above is far too slow to populate 512
// users, so these benches synthesise the demux contents directly: per
// tag, an 8 Hz stream of phase samples breathing sinusoidally (the same
// population shape the chaos soak uses). What is timed is exactly the
// per-tick work the realtime engine fans out: analyze_user over every
// user, Fig. 10 end to end.

core::ReadStream synthetic_reads(std::size_t users, double duration_s) {
  core::ReadStream reads;
  reads.reserve(users * 2 * static_cast<std::size_t>(duration_s * 8.0));
  for (double t = 0.0; t < duration_s; t += 0.125) {
    for (std::size_t u = 1; u <= users; ++u) {
      const double rate_hz = 0.15 + 0.1 * static_cast<double>(u % 5) / 5.0;
      for (std::uint32_t tag = 1; tag <= 2; ++tag) {
        core::TagRead r;
        r.time_s = t + 0.01 * static_cast<double>(tag);
        r.epc = rfid::Epc96::from_user_tag(u, tag);
        r.antenna_id = 1;
        r.frequency_hz = 920.625e6;
        r.rssi_dbm = -55.0;
        r.phase_rad = common::wrap_phase_2pi(
            1.0 + 0.35 * std::sin(common::kTwoPi * rate_hz * t +
                                  static_cast<double>(u + tag)));
        reads.push_back(r);
      }
    }
  }
  return reads;
}

const core::StreamDemux& synthetic_demux(std::size_t users) {
  static std::map<std::size_t, std::unique_ptr<core::StreamDemux>> cache;
  auto& slot = cache[users];
  if (!slot) {
    slot = std::make_unique<core::StreamDemux>();
    for (const auto& r : synthetic_reads(users, 35.0)) slot->add(r);
  }
  return *slot;
}

void BM_AnalysisFanout(benchmark::State& state) {
  // One update tick of the analysis engine: analyze_user for every user
  // over a 30 s window, fanned across an AnalysisPool. range(0) = users,
  // range(1) = worker threads (0 = the serial engine).
  const auto users = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const core::StreamDemux& demux = synthetic_demux(users);
  core::BreathMonitor monitor;
  std::unique_ptr<core::AnalysisPool> pool;
  if (threads > 0) pool = std::make_unique<core::AnalysisPool>(threads);
  std::vector<core::AnalysisScratch> scratch(pool ? pool->slots() : 1);
  std::vector<core::UserAnalysis> results(users);
  const auto analyse_one = [&](std::size_t i, std::size_t slot) {
    results[i] = monitor.analyze_user(demux, static_cast<std::uint64_t>(i + 1),
                                      5.0, 35.0, &scratch[slot]);
  };
  for (auto _ : state) {
    if (pool) {
      pool->run(users, analyse_one);
    } else {
      for (std::size_t i = 0; i < users; ++i) analyse_one(i, 0);
    }
    benchmark::DoNotOptimize(results.data());
  }
  state.counters["users/s"] = benchmark::Counter(
      static_cast<double>(users), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AnalysisFanout)
    ->ArgNames({"users", "threads"})
    ->ArgsProduct({{1, 8, 64, 512}, {0, 1, 2, 4}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_AnalysisFanoutBatched(benchmark::State& state) {
  // The SIMD + batching curves the acceptance gate reads: the same
  // per-tick fan-out as BM_AnalysisFanout (serial engine) but driven
  // through analyze_users in `batch`-user chunks, with the kernel table
  // pinned to scalar (vector=0) or the probed vector level (vector=1).
  // batch:1 is the legacy per-user shape; outputs are bit-identical
  // across every row — only the time moves.
  const auto users = static_cast<std::size_t>(state.range(0));
  const bool vector = state.range(1) != 0;
  const auto batch = static_cast<std::size_t>(state.range(2));
  const auto want = vector ? signal::simd::detected_level()
                           : signal::simd::SimdLevel::Scalar;
  state.SetLabel(signal::simd::simd_level_name(
      signal::simd::override_level_for_testing(want)));
  const core::StreamDemux& demux = synthetic_demux(users);
  core::BreathMonitor monitor;
  core::AnalysisScratch scratch;
  std::vector<std::uint64_t> ids(users);
  for (std::size_t i = 0; i < users; ++i)
    ids[i] = static_cast<std::uint64_t>(i + 1);
  std::vector<core::UserAnalysis> results(users);
  for (auto _ : state) {
    for (std::size_t begin = 0; begin < users; begin += batch) {
      const std::size_t count = std::min(batch, users - begin);
      monitor.analyze_users(demux,
                            std::span<const std::uint64_t>(&ids[begin], count),
                            5.0, 35.0, &scratch,
                            std::span<core::UserAnalysis>(&results[begin], count));
    }
    benchmark::DoNotOptimize(results.data());
  }
  signal::simd::reset_dispatch_for_testing();
  state.counters["users/s"] = benchmark::Counter(
      static_cast<double>(users), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AnalysisFanoutBatched)
    ->ArgNames({"users", "vector", "batch"})
    ->ArgsProduct({{64, 512, 1024}, {0, 1}, {1, 16}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_PipelineMultiUser(benchmark::State& state) {
  // The whole realtime pipeline fed a 30 s multi-user stream: ingest,
  // dirty-window bookkeeping, the parallel fan-out and the event state
  // machine. range(0) = users, range(1) = analysis threads, range(2) =
  // skip_clean_users, range(3) = analysis_batch (1 = legacy per-user
  // work items, 16 = chunked fft_many sweeps).
  const auto users = static_cast<std::size_t>(state.range(0));
  const auto reads = synthetic_reads(users, 30.0);
  for (auto _ : state) {
    core::PipelineConfig cfg;
    cfg.analysis_threads = static_cast<std::size_t>(state.range(1));
    cfg.skip_clean_users = state.range(2) != 0;
    cfg.analysis_batch = static_cast<std::size_t>(state.range(3));
    core::RealtimePipeline pipeline(cfg, nullptr);
    for (const auto& r : reads) pipeline.push(r);
    benchmark::DoNotOptimize(pipeline.latest_size());
  }
  state.counters["reads/s"] = benchmark::Counter(
      static_cast<double>(reads.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PipelineMultiUser)
    ->ArgNames({"users", "threads", "skip", "batch"})
    ->ArgsProduct({{8, 64}, {0, 2}, {0, 1}, {1, 16}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

// Custom main: alongside the normal console output, mirror results as
// JSON into BENCH_pipeline.json (override the path with the
// TAGBREATHE_BENCH_JSON environment variable, or pass an explicit
// --benchmark_out, which takes precedence) so CI and EXPERIMENTS.md
// have a machine-readable scaling record. The defaults are injected as
// argv flags so the stock runner handles the file output.
int main(int argc, char** argv) {
  const char* json_path = std::getenv("TAGBREATHE_BENCH_JSON");
  std::string out_flag = std::string("--benchmark_out=") +
                         (json_path != nullptr ? json_path : "BENCH_pipeline.json");
  std::string format_flag = "--benchmark_out_format=json";
  std::vector<char*> args;
  args.push_back(argv[0]);
  args.push_back(out_flag.data());
  args.push_back(format_flag.data());
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
