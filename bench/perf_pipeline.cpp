// google-benchmark end-to-end benchmarks: full simulate+analyse trials
// and the analysis stage alone (the realtime budget that matters for a
// live deployment — the paper's pipeline ran in realtime on a laptop).
#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "core/ingest.hpp"
#include "core/monitor.hpp"
#include "core/pipeline.hpp"
#include "experiments/runner.hpp"

using namespace tagbreathe;

namespace {

core::ReadStream canned_reads(int users, double duration_s) {
  experiments::ScenarioConfig cfg;
  cfg.users.clear();
  for (int u = 0; u < users; ++u) {
    experiments::UserSpec user;
    user.rate_bpm = 10.0 + 2.0 * u;
    cfg.users.push_back(user);
  }
  cfg.duration_s = duration_s;
  cfg.seed = 11;
  experiments::Scenario scenario(cfg);
  return scenario.run();
}

void BM_SimulateTrial(benchmark::State& state) {
  // Full 120 s radio simulation (slot-level Gen2 + PHY).
  for (auto _ : state) {
    experiments::ScenarioConfig cfg;
    cfg.users = {experiments::UserSpec()};
    cfg.seed = 17;
    experiments::Scenario scenario(cfg);
    auto reads = scenario.run();
    benchmark::DoNotOptimize(reads.data());
  }
}
BENCHMARK(BM_SimulateTrial)->Unit(benchmark::kMillisecond);

void BM_AnalyzeWindow(benchmark::State& state) {
  const int users = static_cast<int>(state.range(0));
  const auto reads = canned_reads(users, 120.0);
  core::BreathMonitor monitor;
  for (auto _ : state) {
    auto analyses = monitor.analyze(reads);
    benchmark::DoNotOptimize(analyses.data());
  }
  state.counters["reads"] = static_cast<double>(reads.size());
  state.counters["reads/s"] = benchmark::Counter(
      static_cast<double>(reads.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AnalyzeWindow)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_RealtimePipelineFeed(benchmark::State& state) {
  const auto reads = canned_reads(1, 120.0);
  for (auto _ : state) {
    core::PipelineConfig cfg;
    core::RealtimePipeline pipeline(cfg, nullptr);
    for (const auto& r : reads) pipeline.push(r);
    benchmark::DoNotOptimize(pipeline.latest().size());
  }
  state.counters["reads/s"] = benchmark::Counter(
      static_cast<double>(reads.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RealtimePipelineFeed)->Unit(benchmark::kMillisecond);

void BM_IngestQueueThroughput(benchmark::State& state) {
  // Contended producers hammering the bounded MPSC ingest queue while
  // the benchmark thread drains — the reader-pump vs analysis hand-off
  // under burst overload. Reads shed by DropOldest still count as
  // processed work (that is the policy doing its job).
  const int producers = static_cast<int>(state.range(0));
  constexpr std::size_t kReadsPerProducer = 8192;
  core::TagRead read;
  read.epc = rfid::Epc96::from_user_tag(1, 1);
  read.phase_rad = 1.0;

  for (auto _ : state) {
    core::IngestQueue queue(1024, core::BackpressurePolicy::DropOldest);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(producers));
    for (int p = 0; p < producers; ++p) {
      threads.emplace_back([&queue, read]() mutable {
        for (std::size_t i = 0; i < kReadsPerProducer; ++i) {
          read.time_s = static_cast<double>(i);
          queue.push(read);
        }
      });
    }
    std::vector<core::TagRead> out;
    const std::size_t total =
        static_cast<std::size_t>(producers) * kReadsPerProducer;
    std::size_t seen = 0;
    while (seen < total) {
      out.clear();
      queue.drain(out, 0.0);
      const auto counters = queue.counters();
      seen = counters.drained + counters.shed_oldest;
    }
    for (auto& t : threads) t.join();
    benchmark::DoNotOptimize(queue.counters().enqueued);
  }
  state.counters["reads/s"] = benchmark::Counter(
      static_cast<double>(producers) * kReadsPerProducer,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IngestQueueThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
