// Fig. 2: raw RSSI readings during the 25 s characterisation capture.
//
// Paper observation: RSSI shows a clear periodic trend with breathing
// (body closer on inhale -> stronger backscatter) but is quantised to
// 0.5 dBm — too coarse for robust extraction.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "bench/characterization.hpp"
#include "common/stats.hpp"

using namespace tagbreathe;

int main() {
  bench::print_header("Figure 2", "Raw RSSI readings (1 tag, 2 m, 25 s)");
  const auto cap = bench::run_characterization();

  std::vector<double> rssi, times;
  for (const auto& r : cap.reads) {
    rssi.push_back(r.rssi_dbm);
    times.push_back(r.time_s);
  }
  std::printf("reads: %zu (%.1f Hz; paper: ~64 Hz)\n", cap.reads.size(),
              static_cast<double>(cap.reads.size()) / 25.0);
  std::printf("RSSI range: %.1f .. %.1f dBm (quantised to 0.5 dBm)\n",
              common::min_value(rssi), common::max_value(rssi));

  // Distinct quantisation levels — the paper's resolution complaint.
  std::vector<double> sorted = rssi;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::printf("distinct report levels: %zu (0.5 dBm steps)\n", sorted.size());

  // One-second bin means, sketched as a sparkline: the periodic trend.
  std::vector<double> binned(25, 0.0);
  std::vector<int> counts(25, 0);
  for (std::size_t i = 0; i < rssi.size(); ++i) {
    auto b = static_cast<std::size_t>(times[i]);
    if (b >= binned.size()) b = binned.size() - 1;
    binned[b] += rssi[i];
    ++counts[b];
  }
  for (std::size_t b = 0; b < binned.size(); ++b)
    if (counts[b] > 0) binned[b] /= counts[b];
  std::printf("1-s mean RSSI trace: %s\n",
              common::sparkline(binned).c_str());
  std::printf("(periodic modulation by breathing visible; true rate %.0f bpm)\n",
              cap.true_rate_bpm);

  if (const auto dir = bench::csv_dir()) {
    common::CsvWriter csv(*dir + "/fig02_rssi.csv", {"time_s", "rssi_dbm"});
    for (std::size_t i = 0; i < rssi.size(); ++i)
      csv.row({times[i], rssi[i]});
    std::printf("CSV: %s/fig02_rssi.csv (%zu rows)\n", dir->c_str(),
                csv.rows_written());
  }
  return 0;
}
