// Fig. 12: breathing-rate accuracy vs distance (1-6 m).
//
// Paper: 98.0% at 1 m, decreasing slightly but staying above 90% at 6 m;
// rates 5-20 bpm, 2-minute trials, repeated.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "experiments/runner.hpp"

using namespace tagbreathe;

int main() {
  bench::print_header("Figure 12", "Accuracy vs distance (1-6 m)");
  bench::print_note("paper: 98.0% @1 m, >90% through 6 m");

  constexpr int kTrialsPerRate = 3;
  const double rates[] = {5.0, 10.0, 15.0, 20.0};

  common::ConsoleTable table(
      {"distance [m]", "accuracy", "err [bpm]", "reads/s", "bar"});
  std::vector<std::array<double, 3>> csv_rows;
  for (int d = 1; d <= 6; ++d) {
    common::RunningStats acc, err, rate_hz;
    for (double rate : rates) {
      experiments::ScenarioConfig cfg;
      cfg.distance_m = d;
      experiments::UserSpec user;
      user.rate_bpm = rate;
      cfg.users = {user};
      cfg.seed = 5000 + static_cast<std::uint64_t>(d) * 100 +
                 static_cast<std::uint64_t>(rate);
      const auto agg = experiments::run_trials(cfg, kTrialsPerRate);
      acc.merge(agg.accuracy);
      err.merge(agg.error_bpm);
      rate_hz.merge(agg.monitor_read_rate_hz);
    }
    table.add_row({std::to_string(d), common::fmt(acc.mean(), 3),
                   common::fmt(err.mean(), 2),
                   common::fmt(rate_hz.mean(), 1),
                   common::ascii_bar(acc.mean(), 1.0, 30)});
    csv_rows.push_back({static_cast<double>(d), acc.mean(), err.mean()});
  }
  table.print();

  if (const auto dir = bench::csv_dir()) {
    common::CsvWriter csv(*dir + "/fig12_distance.csv",
                          {"distance_m", "accuracy", "error_bpm"});
    for (const auto& row : csv_rows) csv.row({row[0], row[1], row[2]});
    std::printf("CSV: %s/fig12_distance.csv\n", dir->c_str());
  }
  return 0;
}
