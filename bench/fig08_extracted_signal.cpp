// Fig. 8: the extracted breathing signal after the FFT low-pass filter
// (0.67 Hz cutoff), with the zero crossings the rate estimate (Eq. 5)
// reads.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "bench/characterization.hpp"
#include "core/monitor.hpp"

using namespace tagbreathe;

int main() {
  bench::print_header("Figure 8",
                      "Extracted breathing signal + zero crossings");
  const auto cap = bench::run_characterization();

  core::BreathMonitor monitor;
  const auto analyses = monitor.analyze(cap.reads);
  if (analyses.empty()) {
    std::printf("no user analysis produced\n");
    return 1;
  }
  const auto& a = analyses[0];

  std::vector<double> values = a.breath.values();
  std::printf("breath signal: %zu samples at %.0f Hz\n", values.size(),
              a.breath.sample_rate_hz);
  std::printf("waveform: %s\n", common::sparkline(values).c_str());

  std::printf("zero crossings: %zu", a.rate.crossings.size());
  const double expected = 2.0 * cap.true_rate_bpm * 25.0 / 60.0;
  std::printf(" (expected ~%.0f for %.0f bpm over 25 s)\n", expected,
              cap.true_rate_bpm);
  std::printf("crossing times [s]:");
  for (const auto& c : a.rate.crossings) std::printf(" %.2f", c.time_s);
  std::printf("\n");
  std::printf("estimated rate: %.2f bpm (true %.1f, Eq. 8 accuracy %.3f)\n",
              a.rate.rate_bpm, cap.true_rate_bpm,
              1.0 - std::abs(a.rate.rate_bpm - cap.true_rate_bpm) /
                        cap.true_rate_bpm);

  if (const auto dir = bench::csv_dir()) {
    common::CsvWriter csv(*dir + "/fig08_breath.csv", {"time_s", "value"});
    for (const auto& s : a.breath.samples) csv.row({s.time_s, s.value});
    std::printf("CSV: %s/fig08_breath.csv\n", dir->c_str());
  }
  return 0;
}
