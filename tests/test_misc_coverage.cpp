// Coverage for the remaining small surfaces: logging, BreathSignal
// accessors, reader statistics, pipeline edge cases, hybrid config.
#include <gtest/gtest.h>

#include <memory>

#include "body/subject.hpp"
#include "common/logging.hpp"
#include "common/units.hpp"
#include "core/breath_extractor.hpp"
#include "core/hybrid.hpp"
#include "core/pipeline.hpp"
#include "experiments/scenario.hpp"
#include "rfid/reader.hpp"

namespace tagbreathe {
namespace {

// --- logging -----------------------------------------------------------------

TEST(Logging, LevelGateIsRespected) {
  const auto previous = common::log_level();
  common::set_log_level(common::LogLevel::Error);
  EXPECT_EQ(common::log_level(), common::LogLevel::Error);
  // Below-threshold messages must not crash and are simply dropped; the
  // stream interface accepts heterogeneous operands.
  common::log_debug() << "dropped " << 42 << " things";
  common::log_info() << "also dropped";
  common::set_log_level(common::LogLevel::Off);
  common::log_error() << "dropped even at error level";
  common::set_log_level(previous);
}

// --- BreathSignal accessors ----------------------------------------------------

TEST(BreathSignal, ValueAndTimeViews) {
  core::BreathSignal sig;
  sig.sample_rate_hz = 20.0;
  sig.samples = {{0.0, 1.0}, {0.05, 2.0}, {0.10, 3.0}};
  EXPECT_EQ(sig.values(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(sig.times(), (std::vector<double>{0.0, 0.05, 0.10}));
}

// --- reader statistics -----------------------------------------------------------

TEST(ReaderStats, CountersAreConsistent) {
  body::SubjectConfig sc;
  sc.user_id = 1;
  sc.position = {2.0, 0.0, 0.0};
  sc.heading_rad = common::kPi;
  auto subject = std::make_unique<body::Subject>(
      sc, body::BreathingModel(body::MetronomeSchedule(10.0), {}));
  std::vector<std::unique_ptr<rfid::TagBehavior>> tags;
  for (int i = 0; i < 2; ++i)
    tags.push_back(std::make_unique<rfid::BodyTag>(
        rfid::Epc96::from_user_tag(1, static_cast<std::uint32_t>(i + 1)),
        subject.get(),
        body::Subject::all_sites()[static_cast<std::size_t>(i)]));
  rfid::ReaderConfig rc;
  rc.seed = 71;
  rfid::ReaderSim sim(rc, std::move(tags));
  const auto reads = sim.run(5.0);

  // now_s advanced, per-tag counters sum to the report count.
  EXPECT_NEAR(sim.now_s(), 5.0, 0.05);
  std::uint64_t total = 0;
  for (auto c : sim.reads_per_tag()) total += c;
  EXPECT_EQ(total, reads.size());
  EXPECT_EQ(sim.tag_count(), 2u);
  EXPECT_EQ(sim.mac_stats().successes, total);

  // Running again continues monotonically.
  const auto more = sim.run(2.0);
  EXPECT_NEAR(sim.now_s(), 7.0, 0.05);
  if (!more.empty()) {
    EXPECT_GE(more.front().time_s, reads.back().time_s);
  }
}

TEST(ReaderStats, ConstructionValidation) {
  EXPECT_THROW(
      rfid::ReaderSim(rfid::ReaderConfig{},
                      std::vector<std::unique_ptr<rfid::TagBehavior>>{}),
      std::invalid_argument);
  rfid::ReaderConfig no_antennas;
  no_antennas.antennas.clear();
  std::vector<std::unique_ptr<rfid::TagBehavior>> one;
  one.push_back(std::make_unique<rfid::StaticTag>(
      rfid::Epc96::from_user_tag(1, 1), common::Vec3{1.0, 0.0, 1.0}));
  EXPECT_THROW(rfid::ReaderSim(no_antennas, std::move(one)),
               std::invalid_argument);
}

// --- pipeline edges ------------------------------------------------------------

TEST(PipelineEdges, AdvanceBeforeAnyReadIsNoop) {
  core::RealtimePipeline pipeline(core::PipelineConfig{}, nullptr);
  pipeline.advance_to(100.0);  // no reads yet: must not crash or emit
  EXPECT_EQ(pipeline.latest_size(), 0u);
  EXPECT_DOUBLE_EQ(pipeline.now_s(), 0.0);
}

TEST(PipelineEdges, NoEventsBeforeWarmup) {
  experiments::ScenarioConfig cfg;
  cfg.duration_s = 8.0;  // shorter than the 10 s warm-up
  cfg.seed = 72;
  experiments::Scenario scenario(cfg);
  std::size_t events = 0;
  core::RealtimePipeline pipeline(
      core::PipelineConfig{},
      [&events](const core::PipelineEvent&) { ++events; });
  for (const auto& r : scenario.run()) pipeline.push(r);
  EXPECT_EQ(events, 0u);
}

// --- hybrid config knobs ----------------------------------------------------------

TEST(HybridConfig, PriorZeroDemotesPhase) {
  // With a zero phase prior the phase modality scores zero quality and
  // is excluded; the consensus must fall back to the auxiliaries (or be
  // invalid) rather than crash.
  experiments::ScenarioConfig cfg;
  cfg.duration_s = 60.0;
  cfg.seed = 73;
  experiments::Scenario scenario(cfg);
  const auto reads = scenario.run();

  core::HybridConfig hc;
  hc.phase_prior = 0.0;
  core::HybridMonitor hybrid(hc);
  const auto results = hybrid.analyze(reads);
  ASSERT_EQ(results.size(), 1u);
  if (results[0].valid) {
    // Whatever the auxiliaries produced, it came from them.
    EXPECT_TRUE(results[0].rssi.usable || results[0].doppler.usable);
  }
}

}  // namespace
}  // namespace tagbreathe
