// Integration tests of the reader simulator: read rates, report sanity,
// contention scaling, orientation blockage — the substrate behaviours the
// paper's evaluation depends on.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "body/breathing_model.hpp"
#include "body/subject.hpp"
#include "common/units.hpp"
#include "rfid/reader.hpp"

namespace tagbreathe {
namespace {

using body::BreathingModel;
using body::BreathShape;
using body::MetronomeSchedule;
using body::Subject;
using body::SubjectConfig;
using body::TagSite;
using rfid::Epc96;
using rfid::ReaderConfig;
using rfid::ReaderSim;

std::unique_ptr<Subject> make_subject(double distance_m, double rate_bpm,
                                      double orientation_deg = 0.0,
                                      std::uint64_t user = 1) {
  SubjectConfig cfg;
  cfg.user_id = user;
  cfg.position = {distance_m, 0.0, 0.0};
  // Antenna sits at the origin: facing it means heading toward -x ... the
  // antenna is at (0,0,1); the subject at (d,0,0) faces it with heading pi.
  cfg.heading_rad = common::kPi + common::deg_to_rad(orientation_deg);
  return std::make_unique<Subject>(
      cfg, BreathingModel(MetronomeSchedule(rate_bpm), BreathShape{}));
}

std::vector<std::unique_ptr<rfid::TagBehavior>> tags_for(
    const Subject& subject, int n_tags) {
  std::vector<std::unique_ptr<rfid::TagBehavior>> tags;
  const auto& sites = Subject::all_sites();
  for (int i = 0; i < n_tags; ++i) {
    tags.push_back(std::make_unique<rfid::BodyTag>(
        Epc96::from_user_tag(subject.user_id(),
                             static_cast<std::uint32_t>(i + 1)),
        &subject, sites[static_cast<std::size_t>(i) % sites.size()]));
  }
  return tags;
}

TEST(ReaderSim, SingleTagRateNear64Hz) {
  // Sec. IV-A: "The data sampling rate was around 64 Hz" (1 tag, 2 m).
  auto subject = make_subject(2.0, 12.0);
  ReaderSim sim(ReaderConfig{}, tags_for(*subject, 1));
  const auto reads = sim.run(10.0);
  const double rate = static_cast<double>(reads.size()) / 10.0;
  EXPECT_GT(rate, 50.0);
  EXPECT_LT(rate, 80.0);
}

TEST(ReaderSim, ReportsAreWellFormed) {
  auto subject = make_subject(2.0, 12.0);
  ReaderSim sim(ReaderConfig{}, tags_for(*subject, 3));
  const auto reads = sim.run(5.0);
  ASSERT_FALSE(reads.empty());
  double last_t = -1.0;
  for (const auto& r : reads) {
    EXPECT_GE(r.time_s, last_t);
    last_t = r.time_s;
    EXPECT_GE(r.phase_rad, 0.0);
    EXPECT_LT(r.phase_rad, common::kTwoPi + 1e-9);
    EXPECT_LT(r.rssi_dbm, 0.0);
    EXPECT_GT(r.rssi_dbm, -90.0);
    EXPECT_LT(r.channel_index, 10);
    EXPECT_EQ(r.epc.user_id(), 1u);
    EXPECT_GE(r.epc.tag_id(), 1u);
    EXPECT_LE(r.epc.tag_id(), 3u);
    // RSSI is quantised to 0.5 dBm.
    const double q = r.rssi_dbm / 0.5;
    EXPECT_NEAR(q, std::round(q), 1e-9);
  }
}

TEST(ReaderSim, ContentionLowersPerTagRate) {
  // Fig. 14's mechanism: more contending tags -> lower per-tag rate, but
  // total throughput stays roughly saturated.
  auto subject = make_subject(2.0, 12.0);
  auto tags = tags_for(*subject, 3);
  for (int i = 0; i < 30; ++i) {
    tags.push_back(std::make_unique<rfid::StaticTag>(
        Epc96::from_user_tag(0xFFFF, static_cast<std::uint32_t>(i)),
        common::Vec3{1.5 + 0.1 * i, 1.0, 0.8}));
  }
  ReaderSim sim(ReaderConfig{}, std::move(tags));
  sim.run(10.0);
  const auto& per_tag = sim.reads_per_tag();
  // The three monitoring tags each got some reads, far below 64 Hz.
  for (int i = 0; i < 3; ++i) {
    const double rate = static_cast<double>(per_tag[static_cast<std::size_t>(i)]) / 10.0;
    EXPECT_GT(rate, 0.8) << "monitor tag " << i;
    EXPECT_LT(rate, 20.0) << "monitor tag " << i;
  }
  std::uint64_t total = 0;
  for (auto c : per_tag) total += c;
  EXPECT_GT(static_cast<double>(total) / 10.0, 40.0);
}

TEST(ReaderSim, OrientationCollapsesReadRate) {
  // Fig. 15b: ~50 Hz facing, ~10 Hz at 90 deg, nothing past ~120 deg.
  const double rate0 = [] {
    auto s = make_subject(4.0, 10.0, 0.0);
    ReaderSim sim(ReaderConfig{}, tags_for(*s, 1));
    return static_cast<double>(sim.run(10.0).size()) / 10.0;
  }();
  const double rate90 = [] {
    auto s = make_subject(4.0, 10.0, 90.0);
    ReaderSim sim(ReaderConfig{}, tags_for(*s, 1));
    return static_cast<double>(sim.run(10.0).size()) / 10.0;
  }();
  const double rate150 = [] {
    auto s = make_subject(4.0, 10.0, 150.0);
    ReaderSim sim(ReaderConfig{}, tags_for(*s, 1));
    return static_cast<double>(sim.run(10.0).size()) / 10.0;
  }();
  EXPECT_GT(rate0, 40.0);
  EXPECT_LT(rate90, rate0 * 0.5);
  EXPECT_GT(rate90, 2.0);
  EXPECT_LT(rate150, 0.5);
}

TEST(ReaderSim, RssiFallsWithDistance) {
  double rssi_1m = 0.0, rssi_6m = 0.0;
  {
    auto s = make_subject(1.0, 10.0);
    ReaderSim sim(ReaderConfig{}, tags_for(*s, 1));
    const auto reads = sim.run(3.0);
    ASSERT_FALSE(reads.empty());
    for (const auto& r : reads) rssi_1m += r.rssi_dbm;
    rssi_1m /= static_cast<double>(reads.size());
  }
  {
    auto s = make_subject(6.0, 10.0);
    ReaderSim sim(ReaderConfig{}, tags_for(*s, 1));
    const auto reads = sim.run(3.0);
    ASSERT_FALSE(reads.empty());
    for (const auto& r : reads) rssi_6m += r.rssi_dbm;
    rssi_6m /= static_cast<double>(reads.size());
  }
  EXPECT_LT(rssi_6m, rssi_1m - 15.0);
}

TEST(ReaderSim, MultiAntennaRoundRobinCoversUsers) {
  // Two users back to back, each visible to one antenna only.
  ReaderConfig cfg;
  cfg.antennas = {rfid::Antenna{1, {0.0, 0.0, 1.0}, 8.5},
                  rfid::Antenna{2, {8.0, 0.0, 1.0}, 8.5}};
  auto u1 = make_subject(3.0, 10.0, 0.0, 1);   // faces antenna 1
  // User 2 at x=5 facing +x (toward antenna 2 at x=8).
  SubjectConfig c2;
  c2.user_id = 2;
  c2.position = {5.0, 0.0, 0.0};
  c2.heading_rad = 0.0;
  Subject u2(c2, BreathingModel(MetronomeSchedule(14.0), BreathShape{}));

  std::vector<std::unique_ptr<rfid::TagBehavior>> tags;
  tags.push_back(std::make_unique<rfid::BodyTag>(
      Epc96::from_user_tag(1, 1), u1.get(), TagSite::Chest));
  tags.push_back(std::make_unique<rfid::BodyTag>(
      Epc96::from_user_tag(2, 1), &u2, TagSite::Chest));
  ReaderSim sim(cfg, std::move(tags));
  const auto reads = sim.run(10.0);

  std::set<std::pair<std::uint64_t, std::uint8_t>> seen;
  for (const auto& r : reads) seen.insert({r.epc.user_id(), r.antenna_id});
  // Each user is read, and only via its facing antenna.
  EXPECT_TRUE(seen.count({1, 1}));
  EXPECT_TRUE(seen.count({2, 2}));
  EXPECT_FALSE(seen.count({1, 2}));
  EXPECT_FALSE(seen.count({2, 1}));
}

}  // namespace
}  // namespace tagbreathe
