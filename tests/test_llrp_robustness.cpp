// Robustness of the llrp-lite decoders: random corruption and
// truncation of valid wire data must produce DecodeError (or decode to
// something) — never crash, hang, or read out of bounds.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "llrp/message.hpp"
#include "llrp/params.hpp"

namespace tagbreathe::llrp {
namespace {

std::vector<std::uint8_t> valid_report_message() {
  core::TagRead read;
  read.epc = rfid::Epc96::from_user_tag(3, 9);
  read.time_s = 1.25;
  read.antenna_id = 1;
  read.channel_index = 2;
  read.rssi_dbm = -61.5;
  read.phase_rad = 1.0;
  read.doppler_hz = 0.5;
  Message m;
  m.type = MessageType::RoAccessReport;
  m.message_id = 5;
  m.body = encode_tag_reports(std::vector<TagReportEntry>{to_wire(read)});
  return encode_message(m);
}

TEST(LlrpRobustness, TruncationAtEveryLengthIsHandled) {
  const auto wire = valid_report_message();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const std::span<const std::uint8_t> prefix(wire.data(), len);
    try {
      const Message m = decode_message(prefix);
      decode_tag_reports(m.body);
    } catch (const DecodeError&) {
      // expected for malformed prefixes
    }
  }
  SUCCEED();
}

TEST(LlrpRobustness, SingleByteCorruptionNeverCrashes) {
  const auto wire = valid_report_message();
  common::Rng rng(17);
  for (std::size_t pos = 0; pos < wire.size(); ++pos) {
    for (int trial = 0; trial < 4; ++trial) {
      auto corrupted = wire;
      corrupted[pos] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
      try {
        const Message m = decode_message(corrupted);
        decode_tag_reports(m.body);
      } catch (const DecodeError&) {
      }
    }
  }
  SUCCEED();
}

TEST(LlrpRobustness, RandomGarbageIsRejectedOrDecoded) {
  common::Rng rng(23);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> garbage(
        static_cast<std::size_t>(rng.uniform_int(0, 120)));
    for (auto& b : garbage)
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    try {
      const Message m = decode_message(garbage);
      decode_tag_reports(m.body);
    } catch (const DecodeError&) {
    }
  }
  SUCCEED();
}

TEST(LlrpRobustness, FramerSurvivesGarbageWithPlausibleLength) {
  // A framer fed garbage whose length field is self-consistent must pop
  // a (bogus) message or throw DecodeError; one whose length is huge
  // must simply keep buffering, bounded by what was fed.
  MessageFramer framer;
  std::vector<std::uint8_t> huge(kHeaderBytes, 0);
  huge[2] = 0x7F;  // length ~2 GiB
  framer.feed(huge);
  Message out;
  EXPECT_FALSE(framer.next(out));
  EXPECT_EQ(framer.buffered_bytes(), kHeaderBytes);
}

TEST(LlrpRobustness, ZeroLengthTlvRejected) {
  // A TLV header claiming length < 4 must throw, not loop forever.
  std::vector<std::uint8_t> bad{0x00, 0xB1, 0x00, 0x02};
  ByteReader r(bad);
  EXPECT_THROW(decode_params(r), DecodeError);
}

}  // namespace
}  // namespace tagbreathe::llrp
