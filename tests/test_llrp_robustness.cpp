// Robustness of the llrp-lite decoders: random corruption and
// truncation of valid wire data must produce DecodeError (or decode to
// something) — never crash, hang, or read out of bounds.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "llrp/message.hpp"
#include "llrp/params.hpp"

namespace tagbreathe::llrp {
namespace {

std::vector<std::uint8_t> valid_report_message() {
  core::TagRead read;
  read.epc = rfid::Epc96::from_user_tag(3, 9);
  read.time_s = 1.25;
  read.antenna_id = 1;
  read.channel_index = 2;
  read.rssi_dbm = -61.5;
  read.phase_rad = 1.0;
  read.doppler_hz = 0.5;
  Message m;
  m.type = MessageType::RoAccessReport;
  m.message_id = 5;
  m.body = encode_tag_reports(std::vector<TagReportEntry>{to_wire(read)});
  return encode_message(m);
}

TEST(LlrpRobustness, TruncationAtEveryLengthIsHandled) {
  const auto wire = valid_report_message();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const std::span<const std::uint8_t> prefix(wire.data(), len);
    try {
      const Message m = decode_message(prefix);
      decode_tag_reports(m.body);
    } catch (const DecodeError&) {
      // expected for malformed prefixes
    }
  }
  SUCCEED();
}

TEST(LlrpRobustness, SingleByteCorruptionNeverCrashes) {
  const auto wire = valid_report_message();
  common::Rng rng(17);
  for (std::size_t pos = 0; pos < wire.size(); ++pos) {
    for (int trial = 0; trial < 4; ++trial) {
      auto corrupted = wire;
      corrupted[pos] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
      try {
        const Message m = decode_message(corrupted);
        decode_tag_reports(m.body);
      } catch (const DecodeError&) {
      }
    }
  }
  SUCCEED();
}

TEST(LlrpRobustness, RandomGarbageIsRejectedOrDecoded) {
  common::Rng rng(23);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> garbage(
        static_cast<std::size_t>(rng.uniform_int(0, 120)));
    for (auto& b : garbage)
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    try {
      const Message m = decode_message(garbage);
      decode_tag_reports(m.body);
    } catch (const DecodeError&) {
    }
  }
  SUCCEED();
}

TEST(LlrpRobustness, FramerDiscardsOversizedLengthAndResyncs) {
  // A header claiming a ~2 GiB frame must not make the framer buffer
  // forever: the implausible header is skipped and the garbage dropped.
  MessageFramer framer;
  std::vector<std::uint8_t> huge(kHeaderBytes, 0);
  huge[0] = 0x04;  // valid version bits so only the length is absurd
  huge[2] = 0x7F;  // length ~2 GiB > kMaxFrameBytes
  framer.feed(huge);
  Message out;
  EXPECT_FALSE(framer.next(out));
  EXPECT_LT(framer.buffered_bytes(), kHeaderBytes);
  EXPECT_GE(framer.stats().resyncs, 1u);

  // A valid message fed afterwards still comes through.
  Message ka;
  ka.type = MessageType::KeepAlive;
  ka.message_id = 9;
  framer.feed(encode_message(ka));
  ASSERT_TRUE(framer.next(out));
  EXPECT_EQ(out.message_id, 9u);
}

TEST(LlrpRobustness, FramerResyncsPastCorruptHeaderToNextMessage) {
  // One corrupted byte inside a frame must cost at most that frame —
  // the framer finds the next real header and the stream continues.
  const auto good = valid_report_message();
  auto corrupt = good;
  corrupt[0] ^= 0x10;  // damage the version bits of frame 1's header
  std::vector<std::uint8_t> stream = corrupt;
  stream.insert(stream.end(), good.begin(), good.end());

  MessageFramer framer;
  framer.feed(stream);
  Message out;
  std::size_t popped = 0;
  while (framer.next(out)) ++popped;
  EXPECT_GE(popped, 1u);  // the intact second frame survives
  EXPECT_EQ(out.type, MessageType::RoAccessReport);
  EXPECT_GE(framer.stats().resyncs, 1u);
}

TEST(LlrpRobustness, FramerNeverThrowsOrStallsOnRandomStreams) {
  // Seed-swept: random byte soup interleaved with valid frames. next()
  // must never throw and the buffer must stay bounded.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    common::Rng rng(seed);
    MessageFramer framer;
    Message out;
    for (int round = 0; round < 50; ++round) {
      if (rng.bernoulli(0.5)) {
        framer.feed(valid_report_message());
      } else {
        std::vector<std::uint8_t> junk(
            static_cast<std::size_t>(rng.uniform_int(1, 64)));
        for (auto& b : junk)
          b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        framer.feed(junk);
      }
      while (framer.next(out)) {
      }
      ASSERT_LE(framer.buffered_bytes(),
                MessageFramer::kMaxFrameBytes + 64);
    }
  }
}

TEST(LlrpRobustness, SeedSweptCorruptionOverParamDecodePaths) {
  // Satellite sweep: every decode entry point in params.cpp fed
  // randomly corrupted (multi-byte) variants of valid payloads across
  // seeds. DecodeError or a successful decode are both fine; crashes,
  // hangs and out-of-bounds reads are not (ASan/UBSan builds verify the
  // latter — see TAGBREATHE_SANITIZE).
  core::TagRead read;
  read.epc = rfid::Epc96::from_user_tag(5, 2);
  read.time_s = 3.5;
  read.channel_index = 1;
  read.rssi_dbm = -58.0;
  read.phase_rad = 2.0;
  const auto report_body =
      encode_tag_reports(std::vector<TagReportEntry>{to_wire(read)});
  const auto caps_body = encode_capabilities(ReaderCapabilities{});
  const auto event_body =
      encode_reader_event(ReaderEventKind::RoSpecStarted, 42);
  ByteWriter status_w;
  encode_param(status_w, make_status(StatusCode::Success));
  const auto status_body = status_w.take();

  const std::vector<const std::vector<std::uint8_t>*> bodies{
      &report_body, &caps_body, &event_body, &status_body};

  for (std::uint64_t seed = 100; seed < 140; ++seed) {
    common::Rng rng(seed);
    for (const auto* body : bodies) {
      auto fuzzed = *body;
      const int flips = rng.uniform_int(1, 8);
      for (int i = 0; i < flips && !fuzzed.empty(); ++i) {
        const auto pos = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(fuzzed.size()) - 1));
        fuzzed[pos] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
      }
      try {
        decode_tag_reports(fuzzed);
      } catch (const DecodeError&) {
      }
      try {
        decode_capabilities(fuzzed);
      } catch (const DecodeError&) {
      }
      try {
        std::uint64_t ts = 0;
        decode_reader_event(fuzzed, ts);
      } catch (const DecodeError&) {
      }
      try {
        ByteReader r(fuzzed);
        const auto params = decode_params(r);
        parse_status(params);
      } catch (const DecodeError&) {
      }
    }
  }
  SUCCEED();
}

TEST(LlrpRobustness, ZeroLengthTlvRejected) {
  // A TLV header claiming length < 4 must throw, not loop forever.
  std::vector<std::uint8_t> bad{0x00, 0xB1, 0x00, 0x02};
  ByteReader r(bad);
  EXPECT_THROW(decode_params(r), DecodeError);
}

}  // namespace
}  // namespace tagbreathe::llrp
