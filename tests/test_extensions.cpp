// Unit + integration tests: recording/replay, breath-to-breath
// statistics, and hybrid (phase + RSSI + Doppler) fusion.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "common/units.hpp"
#include "core/breath_stats.hpp"
#include "core/hybrid.hpp"
#include "core/monitor.hpp"
#include "core/pipeline.hpp"
#include "core/replay.hpp"
#include "experiments/scenario.hpp"

namespace tagbreathe::core {
namespace {

// --- replay -----------------------------------------------------------------

ReadStream capture_short() {
  experiments::ScenarioConfig cfg;
  cfg.duration_s = 10.0;
  cfg.seed = 51;
  experiments::Scenario scenario(cfg);
  return scenario.run();
}

TEST(Replay, CsvRoundTripIsLossless) {
  const ReadStream original = capture_short();
  ASSERT_GT(original.size(), 100u);

  std::stringstream buffer;
  save_reads_csv(buffer, original);
  const ReadStream back = load_reads_csv(buffer);

  ASSERT_EQ(back.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i].time_s, original[i].time_s);
    EXPECT_EQ(back[i].epc, original[i].epc);
    EXPECT_EQ(back[i].antenna_id, original[i].antenna_id);
    EXPECT_EQ(back[i].channel_index, original[i].channel_index);
    EXPECT_DOUBLE_EQ(back[i].frequency_hz, original[i].frequency_hz);
    EXPECT_DOUBLE_EQ(back[i].rssi_dbm, original[i].rssi_dbm);
    EXPECT_DOUBLE_EQ(back[i].phase_rad, original[i].phase_rad);
    EXPECT_DOUBLE_EQ(back[i].doppler_hz, original[i].doppler_hz);
  }
}

TEST(Replay, AnalysisOfReplayedCaptureMatchesLive) {
  experiments::ScenarioConfig cfg;
  cfg.duration_s = 60.0;
  cfg.seed = 52;
  experiments::Scenario scenario(cfg);
  const ReadStream live = scenario.run();

  std::stringstream buffer;
  save_reads_csv(buffer, live);
  const ReadStream replayed = load_reads_csv(buffer);

  BreathMonitor monitor;
  const auto a = monitor.analyze(live);
  const auto b = monitor.analyze(replayed);
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_DOUBLE_EQ(a[0].rate.rate_bpm, b[0].rate.rate_bpm);
}

TEST(Replay, FileRoundTripAndRecorder) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "tb_replay_test.csv").string();
  const ReadStream original = capture_short();

  {
    ReadRecorder recorder(path);
    for (const auto& r : original) recorder.record(r);
    EXPECT_EQ(recorder.recorded(), original.size());
  }
  const ReadStream back = load_reads_csv(path);
  EXPECT_EQ(back.size(), original.size());
  std::filesystem::remove(path);
}

TEST(Replay, RejectsMalformedInput) {
  std::stringstream no_header("garbage\n1,2,3\n");
  EXPECT_THROW(load_reads_csv(no_header), std::runtime_error);

  std::stringstream short_row;
  short_row << kReplayCsvHeader << "\n1.0,abc\n";
  EXPECT_THROW(load_reads_csv(short_row), std::runtime_error);

  std::stringstream bad_epc;
  bad_epc << kReplayCsvHeader
          << "\n1.0,nothex,1,0,920e6,-55,1.0,0.0\n";
  EXPECT_THROW(load_reads_csv(bad_epc), std::runtime_error);

  EXPECT_THROW(load_reads_csv("/nonexistent/path.csv"), std::runtime_error);
}

TEST(Replay, ReplaySortsByTime) {
  ReadStream shuffled = capture_short();
  std::swap(shuffled.front(), shuffled.back());
  double last = -1.0;
  const std::size_t n =
      replay_reads(shuffled, [&last](const TagRead& r) {
        EXPECT_GE(r.time_s, last);
        last = r.time_s;
      });
  EXPECT_EQ(n, shuffled.size());
}

// --- breath statistics ---------------------------------------------------------

std::vector<signal::TimedSample> breath_wave(
    const std::function<double(double)>& period_at, double duration,
    double fs = 20.0) {
  // Frequency-modulated sine: instantaneous period = period_at(t).
  std::vector<signal::TimedSample> out;
  double phase = 0.0;
  for (double t = 0.0; t < duration; t += 1.0 / fs) {
    phase += common::kTwoPi / period_at(t) / fs;
    out.push_back({t, 0.01 * std::sin(phase)});
  }
  return out;
}

BreathStats stats_of(std::span<const signal::TimedSample> wave) {
  ZeroCrossingRateEstimator estimator;
  const RateEstimate est = estimator.estimate(wave);
  return analyze_breaths(wave, est);
}

TEST(BreathStats, RegularBreathingHasLowVariability) {
  const auto wave = breath_wave([](double) { return 5.0; }, 120.0);
  const auto stats = stats_of(wave);
  ASSERT_GT(stats.breaths.size(), 15u);
  EXPECT_NEAR(stats.mean_rate_bpm, 12.0, 0.5);
  EXPECT_LT(stats.interval_cv, 0.05);
  EXPECT_FALSE(is_irregular(stats));
  EXPECT_TRUE(detect_pauses(stats).empty());
  EXPECT_NEAR(stats.mean_amplitude, 0.01, 0.002);
}

TEST(BreathStats, AlternatingFastSlowIsIrregular) {
  // The intro's pattern: alternating fast (2.5 s) and slow (6 s) breaths.
  const auto wave = breath_wave(
      [](double t) { return std::fmod(t, 17.0) < 8.5 ? 2.5 : 6.0; }, 150.0);
  const auto stats = stats_of(wave);
  ASSERT_GT(stats.breaths.size(), 20u);
  EXPECT_GT(stats.interval_cv, 0.25);
  EXPECT_TRUE(is_irregular(stats));
}

TEST(BreathStats, DetectsPause) {
  // Regular 4 s breaths with one 12 s gap in the middle.
  std::vector<signal::TimedSample> wave;
  double phase = 0.0;
  for (double t = 0.0; t < 120.0; t += 0.05) {
    const bool paused = t > 60.0 && t < 72.0;
    if (!paused) phase += common::kTwoPi / 4.0 * 0.05;
    wave.push_back({t, 0.01 * std::sin(phase)});
  }
  const auto stats = stats_of(wave);
  const auto pauses = detect_pauses(stats);
  ASSERT_GE(pauses.size(), 1u);
  EXPECT_NEAR(pauses[0].start_s, 62.0, 6.0);
  EXPECT_GT(pauses[0].duration_s, 5.0);
}

TEST(BreathStats, AmplitudeTrendCaptured) {
  // Breaths getting deeper over time.
  std::vector<signal::TimedSample> wave;
  for (double t = 0.0; t < 60.0; t += 0.05) {
    const double amp = 0.005 + 0.0001 * t;
    wave.push_back({t, amp * std::sin(common::kTwoPi * t / 4.0)});
  }
  const auto stats = stats_of(wave);
  ASSERT_GT(stats.breaths.size(), 8u);
  EXPECT_GT(stats.amplitude_range_ratio, 1.5);
  // Breaths are sorted by time; last deeper than first.
  EXPECT_GT(stats.breaths.back().amplitude,
            stats.breaths.front().amplitude);
}

TEST(BreathStats, EmptyInputs) {
  const auto stats = analyze_breaths({}, RateEstimate{});
  EXPECT_TRUE(stats.breaths.empty());
  EXPECT_FALSE(is_irregular(stats));
  EXPECT_TRUE(detect_pauses(stats).empty());
}

TEST(BreathStats, EndToEndOnSimulatedIrregularBreathing) {
  experiments::ScenarioConfig cfg;
  cfg.duration_s = 150.0;
  cfg.seed = 53;
  cfg.users[0].schedule = {{0.0, 8.0}, {50.0, 18.0}, {100.0, 8.0}};
  experiments::Scenario scenario(cfg);
  const auto reads = scenario.run();
  BreathMonitor monitor;
  const auto analyses = monitor.analyze(reads);
  ASSERT_EQ(analyses.size(), 1u);
  const auto stats =
      analyze_breaths(analyses[0].breath.samples, analyses[0].rate);
  ASSERT_GT(stats.breaths.size(), 10u);
  // Rate alternates 8 <-> 18 bpm: clearly irregular over the window.
  EXPECT_GT(stats.interval_cv, 0.2);
}

// --- hybrid fusion -------------------------------------------------------------

TEST(Hybrid, QualityScoreBasics) {
  // A clean sine scores high; noise scores low.
  std::vector<signal::TimedSample> clean, noise;
  common::Rng rng(9);
  for (double t = 0.0; t < 60.0; t += 0.05) {
    clean.push_back({t, std::sin(common::kTwoPi * 0.2 * t)});
    noise.push_back({t, rng.normal()});
  }
  ZeroCrossingRateEstimator estimator;
  const double q_clean =
      breath_signal_quality(clean, 20.0, estimator.estimate(clean));
  const double q_noise =
      breath_signal_quality(noise, 20.0, estimator.estimate(noise));
  EXPECT_GT(q_clean, 0.5);
  EXPECT_LT(q_noise, q_clean * 0.6);
}

TEST(Hybrid, MatchesPhaseWhenPhaseIsHealthy) {
  experiments::ScenarioConfig cfg;
  cfg.duration_s = 120.0;
  cfg.seed = 54;
  experiments::Scenario scenario(cfg);
  const auto reads = scenario.run();

  HybridMonitor hybrid;
  const auto results = hybrid.analyze(reads);
  ASSERT_EQ(results.size(), 1u);
  const auto& r = results[0];
  EXPECT_TRUE(r.valid);
  EXPECT_TRUE(r.phase.usable);
  // Phase dominates the consensus at healthy SNR.
  EXPECT_NEAR(r.rate_bpm, r.phase.rate_bpm, 1.0);
  EXPECT_NEAR(r.rate_bpm, 10.0, 1.0);
  // Phase quality (with prior) outranks the auxiliaries.
  EXPECT_GE(r.phase.quality, r.rssi.quality);
  EXPECT_GE(r.phase.quality, r.doppler.quality);
}

TEST(Hybrid, EmptyInput) {
  HybridMonitor hybrid;
  EXPECT_TRUE(hybrid.analyze({}).empty());
}

}  // namespace
}  // namespace tagbreathe::core
