// Unit + property tests: windows, FIR design/filtering, and the
// time-domain conditioning filters.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "signal/filters.hpp"
#include "signal/fir.hpp"
#include "signal/window.hpp"

namespace tagbreathe::signal {
namespace {

using common::kTwoPi;

// --- windows -------------------------------------------------------------

class WindowTest : public ::testing::TestWithParam<WindowType> {};

TEST_P(WindowTest, SymmetricAndBounded) {
  const auto w = make_window(GetParam(), 65);
  ASSERT_EQ(w.size(), 65u);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_GE(w[i], -1e-6);
    EXPECT_LE(w[i], 1.0 + 1e-12);
    EXPECT_NEAR(w[i], w[w.size() - 1 - i], 1e-12) << "i=" << i;
  }
  EXPECT_GT(window_gain(w), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllWindows, WindowTest,
                         ::testing::Values(WindowType::Rectangular,
                                           WindowType::Hann,
                                           WindowType::Hamming,
                                           WindowType::Blackman,
                                           WindowType::BlackmanHarris));

TEST(Window, HannEndsAtZeroPeaksAtOne) {
  const auto w = make_window(WindowType::Hann, 33);
  EXPECT_NEAR(w.front(), 0.0, 1e-12);
  EXPECT_NEAR(w.back(), 0.0, 1e-12);
  EXPECT_NEAR(w[16], 1.0, 1e-12);
}

TEST(Window, ApplyWindowMultiplies) {
  std::vector<double> data{2.0, 2.0, 2.0};
  apply_window(data, std::vector<double>{0.5, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(data[0], 1.0);
  EXPECT_DOUBLE_EQ(data[1], 2.0);
  EXPECT_DOUBLE_EQ(data[2], 0.0);
  std::vector<double> wrong{1.0};
  EXPECT_THROW(apply_window(data, wrong), std::invalid_argument);
}

// --- FIR design ------------------------------------------------------------

TEST(FirDesign, LowpassDcGainIsUnity) {
  const auto taps = design_lowpass(0.67, 20.0, 101);
  double dc = 0.0;
  for (double t : taps) dc += t;
  EXPECT_NEAR(dc, 1.0, 1e-12);
}

TEST(FirDesign, LowpassIsSymmetricLinearPhase) {
  const auto taps = design_lowpass(1.0, 20.0, 51);
  for (std::size_t i = 0; i < taps.size(); ++i)
    EXPECT_NEAR(taps[i], taps[taps.size() - 1 - i], 1e-12);
}

TEST(FirDesign, LowpassFrequencyResponseShape) {
  const auto taps = design_lowpass(0.67, 20.0, 201);
  EXPECT_NEAR(frequency_response_mag(taps, 0.0, 20.0), 1.0, 1e-9);
  EXPECT_GT(frequency_response_mag(taps, 0.3, 20.0), 0.95);
  EXPECT_NEAR(frequency_response_mag(taps, 0.67, 20.0), 0.5, 0.1);
  EXPECT_LT(frequency_response_mag(taps, 2.0, 20.0), 0.01);
}

TEST(FirDesign, HighpassBlocksDcPassesHigh) {
  const auto taps = design_highpass(1.0, 20.0, 201);
  EXPECT_NEAR(frequency_response_mag(taps, 0.0, 20.0), 0.0, 1e-9);
  EXPECT_GT(frequency_response_mag(taps, 5.0, 20.0), 0.95);
}

TEST(FirDesign, BandpassSelectsBand) {
  const auto taps = design_bandpass(0.1, 0.67, 20.0, 301);
  EXPECT_LT(frequency_response_mag(taps, 0.01, 20.0), 0.1);
  EXPECT_GT(frequency_response_mag(taps, 0.3, 20.0), 0.9);
  EXPECT_LT(frequency_response_mag(taps, 2.0, 20.0), 0.02);
}

TEST(FirDesign, RejectsBadArguments) {
  EXPECT_THROW(design_lowpass(0.0, 20.0, 11), std::invalid_argument);
  EXPECT_THROW(design_lowpass(11.0, 20.0, 11), std::invalid_argument);
  EXPECT_THROW(design_lowpass(1.0, 20.0, 10), std::invalid_argument);  // even
  EXPECT_THROW(design_lowpass(1.0, 20.0, 1), std::invalid_argument);
  EXPECT_THROW(design_bandpass(0.5, 0.4, 20.0, 11), std::invalid_argument);
}

TEST(FirDesign, SuggestNumTapsOddAndScales) {
  const std::size_t wide = suggest_num_taps(1.0, 20.0);
  const std::size_t narrow = suggest_num_taps(0.1, 20.0);
  EXPECT_EQ(wide % 2, 1u);
  EXPECT_EQ(narrow % 2, 1u);
  EXPECT_GT(narrow, wide);
  EXPECT_THROW(suggest_num_taps(0.0, 20.0), std::invalid_argument);
}

// --- FIR application ---------------------------------------------------------

TEST(FirFilter, FilterSamePreservesLengthAndPassesTone) {
  constexpr double fs = 20.0;
  const auto taps = design_lowpass(1.0, fs, 101);
  std::vector<double> x(400);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(kTwoPi * 0.2 * static_cast<double>(i) / fs);
  const auto y = filter_same(x, taps);
  ASSERT_EQ(y.size(), x.size());
  // Interior should match the input closely (0.2 Hz is in the pass band,
  // delay already compensated by filter_same).
  for (std::size_t i = 100; i < 300; ++i) EXPECT_NEAR(y[i], x[i], 0.02);
}

TEST(FirFilter, FilterSameRejectsStopbandTone) {
  constexpr double fs = 20.0;
  const auto taps = design_lowpass(0.67, fs, 151);
  std::vector<double> x(600);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(kTwoPi * 4.0 * static_cast<double>(i) / fs);
  const auto y = filter_same(x, taps);
  for (std::size_t i = 150; i < 450; ++i) EXPECT_NEAR(y[i], 0.0, 0.01);
}

TEST(FirFilter, FiltFiltIsZeroPhase) {
  constexpr double fs = 20.0;
  const auto taps = design_lowpass(1.0, fs, 101);
  std::vector<double> x(800);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(kTwoPi * 0.25 * static_cast<double>(i) / fs);
  const auto y = filtfilt(x, taps);
  // Zero crossing positions of y must match x (no phase shift).
  for (std::size_t i = 200; i < 600; ++i) {
    if (x[i - 1] < 0.0 && x[i] >= 0.0) {
      EXPECT_LT(y[i - 2] , 0.05);
      EXPECT_GT(y[i + 1], -0.05);
    }
  }
  // And the interior amplitude should be close to 1 (passband^2).
  double peak = 0.0;
  for (std::size_t i = 200; i < 600; ++i) peak = std::max(peak, y[i]);
  EXPECT_NEAR(peak, 1.0, 0.05);
}

TEST(FirFilter, StreamingMatchesBatchConvolution) {
  common::Rng rng(3);
  const auto taps = design_lowpass(2.0, 20.0, 31);
  std::vector<double> x(200);
  for (auto& v : x) v = rng.normal();

  StreamingFir stream(taps);
  std::vector<double> streamed;
  for (double v : x) streamed.push_back(stream.push(v));

  // Streaming output y[n] = sum_k taps[k] x[n-k] (causal). Compare with a
  // direct causal convolution.
  for (std::size_t n = 0; n < x.size(); ++n) {
    double expect = 0.0;
    for (std::size_t k = 0; k < taps.size(); ++k) {
      if (n >= k) expect += taps[k] * x[n - k];
    }
    EXPECT_NEAR(streamed[n], expect, 1e-9) << "n=" << n;
  }
  EXPECT_DOUBLE_EQ(stream.group_delay(), 15.0);
}

TEST(FirFilter, StreamingReset) {
  StreamingFir stream({0.5, 0.5});
  stream.push(10.0);
  stream.reset();
  EXPECT_DOUBLE_EQ(stream.push(2.0), 1.0);  // history cleared
}

// --- conditioning filters ----------------------------------------------------

TEST(Filters, MovingAverageSmoothsConstant) {
  std::vector<double> x(20, 3.0);
  const auto y = moving_average(x, 5);
  for (double v : y) EXPECT_NEAR(v, 3.0, 1e-12);
}

TEST(Filters, MovingAverageEdges) {
  std::vector<double> x{1.0, 2.0, 3.0};
  const auto y = moving_average(x, 3);
  EXPECT_NEAR(y[0], 1.5, 1e-12);  // mean of first two
  EXPECT_NEAR(y[1], 2.0, 1e-12);
  EXPECT_NEAR(y[2], 2.5, 1e-12);
  EXPECT_THROW(moving_average(x, 2), std::invalid_argument);
}

TEST(Filters, MovingMedianKillsSpike) {
  std::vector<double> x(21, 1.0);
  x[10] = 100.0;
  const auto y = moving_median(x, 5);
  EXPECT_NEAR(y[10], 1.0, 1e-12);
}

TEST(Filters, DetrendRemovesLine) {
  std::vector<double> x;
  for (int i = 0; i < 100; ++i) x.push_back(0.7 * i + 3.0);
  detrend_linear(x);
  for (double v : x) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Filters, DetrendPreservesOscillationShape) {
  std::vector<double> x;
  for (int i = 0; i < 200; ++i)
    x.push_back(std::sin(kTwoPi * i / 40.0) + 0.05 * i);
  detrend_linear(x);
  // The oscillation should survive with roughly unit amplitude.
  double peak = 0.0;
  for (double v : x) peak = std::max(peak, std::abs(v));
  EXPECT_NEAR(peak, 1.0, 0.15);
}

TEST(Filters, HampelReplacesOutliers) {
  common::Rng rng(4);
  std::vector<double> x(101);
  for (auto& v : x) v = rng.normal(0.0, 0.1);
  x[50] = 25.0;
  x[80] = -17.0;
  const std::size_t replaced = hampel_filter(x, 9, 3.0);
  EXPECT_GE(replaced, 2u);
  EXPECT_LT(std::abs(x[50]), 1.0);
  EXPECT_LT(std::abs(x[80]), 1.0);
}

TEST(Filters, HampelLeavesCleanDataAlone) {
  std::vector<double> x;
  for (int i = 0; i < 50; ++i) x.push_back(std::sin(0.3 * i));
  const auto original = x;
  hampel_filter(x, 7, 4.0);
  // A smooth sine has no 4-sigma outliers.
  EXPECT_EQ(x, original);
}

TEST(Filters, ExponentialSmooth) {
  const auto y = exponential_smooth(std::vector<double>{1.0, 1.0, 1.0}, 0.5);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[2], 1.0);
  EXPECT_THROW(exponential_smooth(std::vector<double>{1.0}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(exponential_smooth(std::vector<double>{1.0}, 1.5),
               std::invalid_argument);
}

TEST(Filters, DiffAndCumsumAreInverse) {
  std::vector<double> x{3.0, 1.0, 4.0, 1.0, 5.0};
  const auto d = diff(x);
  ASSERT_EQ(d.size(), 4u);
  const auto c = cumulative_sum(d);
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c[i], x[i + 1] - x[0], 1e-12);
}

}  // namespace
}  // namespace tagbreathe::signal
