// Unit + integration tests: antenna selection, baselines, the
// BreathMonitor facade and the realtime pipeline (including apnea and
// signal-loss events).
#include <gtest/gtest.h>

#include "body/subject.hpp"
#include "common/units.hpp"
#include "core/antenna_selector.hpp"
#include "core/baselines.hpp"
#include "core/monitor.hpp"
#include "core/pipeline.hpp"
#include "experiments/runner.hpp"
#include "rfid/channel_plan.hpp"
#include "rfid/phase_model.hpp"

namespace tagbreathe::core {
namespace {

// --- antenna selection -------------------------------------------------------

std::vector<TagRead> reads_on_antenna(std::uint8_t antenna, int count,
                                      double rssi, double duration_s) {
  std::vector<TagRead> out;
  for (int i = 0; i < count; ++i) {
    TagRead r;
    r.epc = rfid::Epc96::from_user_tag(1, 1);
    r.antenna_id = antenna;
    r.time_s = duration_s * i / count;
    r.rssi_dbm = rssi;
    out.push_back(r);
  }
  return out;
}

TEST(AntennaSelector, PrefersHigherReadRate) {
  const auto busy = reads_on_antenna(1, 600, -60.0, 10.0);
  const auto quiet = reads_on_antenna(2, 60, -60.0, 10.0);
  std::vector<const std::vector<TagRead>*> streams{&busy, &quiet};
  EXPECT_EQ(select_antenna(streams, 10.0), 1);
  const auto scored = score_antennas(streams, 10.0);
  ASSERT_EQ(scored.size(), 2u);
  EXPECT_EQ(scored[0].antenna_id, 1);
  EXPECT_NEAR(scored[0].read_rate_hz, 60.0, 1e-9);
  EXPECT_NEAR(scored[1].read_rate_hz, 6.0, 1e-9);
}

TEST(AntennaSelector, RssiBreaksTies) {
  const auto strong = reads_on_antenna(1, 300, -50.0, 10.0);
  const auto weak = reads_on_antenna(2, 300, -75.0, 10.0);
  std::vector<const std::vector<TagRead>*> streams{&weak, &strong};
  EXPECT_EQ(select_antenna(streams, 10.0), 1);
}

TEST(AntennaSelector, EmptyStreams) {
  std::vector<const std::vector<TagRead>*> none;
  EXPECT_EQ(select_antenna(none, 10.0), 0);
  EXPECT_TRUE(score_antennas(none, 10.0).empty());
}

// --- monitor on synthetic scenarios ----------------------------------------------

experiments::ScenarioConfig default_scenario(std::uint64_t seed) {
  experiments::ScenarioConfig cfg;
  cfg.seed = seed;
  return cfg;
}

TEST(Monitor, EmptyInput) {
  BreathMonitor monitor;
  EXPECT_TRUE(monitor.analyze({}).empty());
}

TEST(Monitor, AnalysisArtefactsAreConsistent) {
  experiments::Scenario scenario(default_scenario(31));
  const auto reads = scenario.run();
  BreathMonitor monitor;
  const auto analyses = monitor.analyze(reads);
  ASSERT_EQ(analyses.size(), 1u);
  const auto& a = analyses[0];
  EXPECT_EQ(a.user_id, 1u);
  EXPECT_EQ(a.streams_used, 3u);  // 3 tags, one antenna
  EXPECT_GT(a.reads_used, 1000u);
  EXPECT_EQ(a.antenna_used, 1);
  EXPECT_DOUBLE_EQ(a.track_rate_hz, 20.0);
  // Breath signal lives on the same grid as the fused track.
  EXPECT_EQ(a.breath.samples.size(), a.fused_track.size());
  // Crossing count consistent with the estimated rate over the window.
  EXPECT_TRUE(a.rate.reliable);
  ASSERT_FALSE(a.rate.instantaneous.empty());
  EXPECT_FALSE(a.antenna_scores.empty());
}

TEST(Monitor, SeparatesConcurrentUsers) {
  experiments::ScenarioConfig cfg = default_scenario(32);
  cfg.users.clear();
  for (int u = 0; u < 3; ++u) {
    experiments::UserSpec spec;
    spec.rate_bpm = 8.0 + 4.0 * u;  // 8, 12, 16 bpm
    cfg.users.push_back(spec);
  }
  experiments::Scenario scenario(cfg);
  const auto reads = scenario.run();
  BreathMonitor monitor;
  const auto analyses = monitor.analyze(reads);
  ASSERT_EQ(analyses.size(), 3u);
  for (std::size_t u = 0; u < 3; ++u) {
    EXPECT_NEAR(analyses[u].rate.rate_bpm, 8.0 + 4.0 * u, 1.0)
        << "user " << u + 1;
  }
}

TEST(Monitor, SingleTagModeUsesBusiestStream) {
  experiments::Scenario scenario(default_scenario(33));
  const auto reads = scenario.run();
  MonitorConfig mc;
  mc.fuse_tags = false;
  BreathMonitor monitor(mc);
  const auto analyses = monitor.analyze(reads);
  ASSERT_EQ(analyses.size(), 1u);
  EXPECT_EQ(analyses[0].streams_used, 1u);
  EXPECT_NEAR(analyses[0].rate.rate_bpm, 10.0, 1.5);
}

// --- baselines -----------------------------------------------------------------

TEST(Baselines, RunAndAreWorseThanPhase) {
  experiments::Scenario scenario(default_scenario(34));
  const auto reads = scenario.run();

  BreathMonitor monitor;
  const auto phase = monitor.analyze(reads);
  ASSERT_EQ(phase.size(), 1u);
  const double phase_err = std::abs(phase[0].rate.rate_bpm - 10.0);

  BaselineConfig rssi_cfg;
  rssi_cfg.kind = BaselineKind::Rssi;
  const auto rssi = analyze_baseline(reads, rssi_cfg);
  ASSERT_EQ(rssi.size(), 1u);
  EXPECT_GT(rssi[0].reads_used, 0u);

  BaselineConfig dop_cfg;
  dop_cfg.kind = BaselineKind::Doppler;
  const auto dop = analyze_baseline(reads, dop_cfg);
  ASSERT_EQ(dop.size(), 1u);

  // The paper's characterisation: RSSI is too coarse and Doppler too
  // noisy; phase wins. (Not a tautology: all three see the same reads.)
  const double rssi_err = std::abs(rssi[0].rate_bpm - 10.0);
  const double dop_err = std::abs(dop[0].rate_bpm - 10.0);
  EXPECT_LT(phase_err, 1.0);
  EXPECT_GT(std::min(rssi_err, dop_err), phase_err);
}

TEST(Baselines, KindNamesAndEmptyInput) {
  EXPECT_STREQ(baseline_kind_name(BaselineKind::Rssi), "rssi");
  EXPECT_STREQ(baseline_kind_name(BaselineKind::Doppler), "doppler");
  EXPECT_TRUE(analyze_baseline({}, BaselineConfig{}).empty());
}

// --- realtime pipeline -------------------------------------------------------------

TEST(Pipeline, EmitsRateUpdatesAfterWarmup) {
  experiments::ScenarioConfig cfg = default_scenario(35);
  cfg.duration_s = 60.0;
  experiments::Scenario scenario(cfg);
  const auto reads = scenario.run();

  std::vector<PipelineEvent> events;
  PipelineConfig pcfg;
  RealtimePipeline pipeline(
      pcfg, [&events](const PipelineEvent& e) { events.push_back(e); });
  for (const auto& r : reads) pipeline.push(r);

  std::size_t updates = 0;
  double last_rate = 0.0;
  for (const auto& e : events) {
    if (e.kind == PipelineEventKind::RateUpdate) {
      ++updates;
      last_rate = e.rate_bpm;
      EXPECT_GE(e.time_s, pcfg.warmup_s - 1.0);
    }
  }
  EXPECT_GT(updates, 30u);  // ~1 per second after warm-up
  EXPECT_NEAR(last_rate, 10.0, 1.5);
  EXPECT_GT(pipeline.latest_size(), 0u);
}

TEST(Pipeline, DetectsApnea) {
  // Breathing stops (breath hold) from t = 40 s for 20 s.
  experiments::ScenarioConfig cfg = default_scenario(36);
  cfg.duration_s = 80.0;
  cfg.users[0].apneas = {{40.0, 20.0}};
  experiments::Scenario scenario(cfg);
  const auto reads = scenario.run();

  std::vector<PipelineEvent> events;
  RealtimePipeline pipeline(
      PipelineConfig{}, [&events](const PipelineEvent& e) {
        events.push_back(e);
      });
  for (const auto& r : reads) pipeline.push(r);

  bool apnea_seen = false;
  double apnea_time = 0.0;
  for (const auto& e : events) {
    if (e.kind == PipelineEventKind::ApneaAlert && !apnea_seen) {
      apnea_seen = true;
      apnea_time = e.time_s;
    }
  }
  ASSERT_TRUE(apnea_seen);
  // The alert fires during the hold, after the silence threshold.
  EXPECT_GT(apnea_time, 45.0);
  EXPECT_LT(apnea_time, 62.0);
}

TEST(Pipeline, DetectsSignalLossAndRecovery) {
  // Subject turns away (blocked) between 30 s and 45 s: no reads at all.
  experiments::ScenarioConfig cfg = default_scenario(37);
  cfg.duration_s = 30.0;
  experiments::Scenario scenario(cfg);
  auto reads = scenario.run();
  // Synthesize the outage by shifting a second capture by 45 s.
  experiments::ScenarioConfig cfg2 = default_scenario(38);
  cfg2.duration_s = 20.0;
  experiments::Scenario scenario2(cfg2);
  for (auto r : scenario2.run()) {
    r.time_s += 45.0;
    reads.push_back(r);
  }

  std::vector<PipelineEvent> events;
  RealtimePipeline pipeline(
      PipelineConfig{}, [&events](const PipelineEvent& e) {
        events.push_back(e);
      });
  for (const auto& r : reads) pipeline.push(r);

  bool lost = false, recovered = false;
  for (const auto& e : events) {
    if (e.kind == PipelineEventKind::SignalLost) lost = true;
    if (e.kind == PipelineEventKind::SignalRecovered) {
      EXPECT_TRUE(lost);
      recovered = true;
    }
  }
  EXPECT_TRUE(lost);
  EXPECT_TRUE(recovered);
}

TEST(Pipeline, EventNames) {
  EXPECT_STREQ(pipeline_event_name(PipelineEventKind::RateUpdate),
               "rate-update");
  EXPECT_STREQ(pipeline_event_name(PipelineEventKind::ApneaAlert),
               "apnea-alert");
  EXPECT_STREQ(pipeline_event_name(PipelineEventKind::SignalLost),
               "signal-lost");
}

// --- experiments harness -------------------------------------------------------

TEST(Experiments, ScenarioValidation) {
  experiments::ScenarioConfig cfg;
  cfg.users.clear();
  EXPECT_THROW(experiments::Scenario{cfg}, std::invalid_argument);
  cfg = experiments::ScenarioConfig{};
  cfg.tags_per_user = 0;
  EXPECT_THROW(experiments::Scenario{cfg}, std::invalid_argument);
}

TEST(Experiments, TrialProducesPerUserResults) {
  experiments::ScenarioConfig cfg = default_scenario(40);
  cfg.duration_s = 60.0;
  const auto trial = experiments::run_trial(cfg);
  ASSERT_EQ(trial.users.size(), 1u);
  EXPECT_DOUBLE_EQ(trial.users[0].true_bpm, 10.0);
  EXPECT_GT(trial.users[0].accuracy, 0.9);
  EXPECT_GT(trial.read_rate_hz, 30.0);
}

TEST(Experiments, TrialsAreDeterministicPerSeed) {
  experiments::ScenarioConfig cfg = default_scenario(41);
  cfg.duration_s = 30.0;
  const auto a = experiments::run_trial(cfg);
  const auto b = experiments::run_trial(cfg);
  ASSERT_EQ(a.users.size(), b.users.size());
  EXPECT_DOUBLE_EQ(a.users[0].estimated_bpm, b.users[0].estimated_bpm);
  EXPECT_EQ(a.total_reads, b.total_reads);
}

TEST(Experiments, AggregateCombinesTrials) {
  experiments::ScenarioConfig cfg = default_scenario(42);
  cfg.duration_s = 30.0;
  const auto agg = experiments::run_trials(cfg, 3);
  EXPECT_EQ(agg.trials, 3u);
  EXPECT_EQ(agg.accuracy.count(), 3u);
  EXPECT_GT(agg.accuracy.mean(), 0.8);
}

TEST(Experiments, ContendingTagsAreNotUsers) {
  experiments::ScenarioConfig cfg = default_scenario(43);
  cfg.duration_s = 30.0;
  cfg.contending_tags = 10;
  const auto trial = experiments::run_trial(cfg);
  EXPECT_EQ(trial.users.size(), 1u);  // item tags excluded from results
  EXPECT_GT(trial.read_rate_hz, trial.monitor_read_rate_hz);
}

}  // namespace
}  // namespace tagbreathe::core
