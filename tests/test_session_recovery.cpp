// Self-healing session tests: the SessionSupervisor driving an
// LlrpClient over a FaultyChannel must survive disconnects mid-report,
// silent stalls (keepalive watchdog) and corrupt-frame resyncs — and
// the pipeline above it must degrade gracefully instead of drifting.
// Every scenario is seeded and deterministic.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "body/subject.hpp"
#include "common/units.hpp"
#include "core/metrics.hpp"
#include "core/pipeline.hpp"
#include "llrp/session.hpp"
#include "obs/observability.hpp"

namespace tagbreathe::llrp {
namespace {

constexpr double kTrueRateBpm = 12.0;

std::unique_ptr<rfid::ReaderSim> make_sim(
    std::unique_ptr<body::Subject>& subject_out,
    double rate_bpm = kTrueRateBpm) {
  body::SubjectConfig cfg;
  cfg.user_id = 1;
  cfg.position = {3.0, 0.0, 0.0};
  cfg.heading_rad = common::kPi;
  subject_out = std::make_unique<body::Subject>(
      cfg, body::BreathingModel(body::MetronomeSchedule(rate_bpm), {}));
  std::vector<std::unique_ptr<rfid::TagBehavior>> tags;
  for (int i = 0; i < 3; ++i) {
    tags.push_back(std::make_unique<rfid::BodyTag>(
        rfid::Epc96::from_user_tag(1, static_cast<std::uint32_t>(i + 1)),
        subject_out.get(),
        body::Subject::all_sites()[static_cast<std::size_t>(i)]));
  }
  rfid::ReaderConfig rc;
  rc.seed = 77;
  return std::make_unique<rfid::ReaderSim>(rc, std::move(tags));
}

TEST(SessionRecovery, SupervisorBringsUpSessionUnaided) {
  std::unique_ptr<body::Subject> subject;
  SupervisedSessionConfig cfg;
  cfg.faults = FaultPlan::none();
  SupervisedSession session(cfg, make_sim(subject));

  std::size_t reads = 0;
  session.client().set_read_callback(
      [&reads](const core::TagRead&) { ++reads; });

  EXPECT_EQ(session.supervisor().state(), SessionState::Disconnected);
  session.advance(5.0);

  EXPECT_EQ(session.supervisor().state(), SessionState::Streaming);
  EXPECT_TRUE(session.endpoint().rospec_started());
  EXPECT_GE(session.supervisor().health().reconnects, 1u);
  EXPECT_GE(session.supervisor().health().rearm_count, 1u);
  EXPECT_EQ(session.supervisor().health().watchdog_fires, 0u);
  EXPECT_GT(reads, 100u);
}

TEST(SessionRecovery, DisconnectMidReportReconnectsWithBackoffAndRearms) {
  std::unique_ptr<body::Subject> subject;
  SupervisedSessionConfig cfg;
  cfg.faults.seed = 31;
  cfg.faults.disconnect_period_s = 4.0;
  cfg.faults.disconnect_duration_s = 0.75;
  SupervisedSession session(cfg, make_sim(subject));

  std::size_t reads = 0;
  session.client().set_read_callback(
      [&reads](const core::TagRead&) { ++reads; });

  session.advance(21.5);  // outages at t = 4, 8, 12, 16, 20

  const auto& counters = session.channel().counters();
  const auto& health = session.supervisor().health();
  EXPECT_GE(counters.disconnects, 5u);
  EXPECT_GT(counters.bytes_lost_to_disconnect, 0u);
  // One successful dial per outage (plus the initial bring-up), and a
  // full ROSpec re-arm after each.
  EXPECT_GE(health.reconnects, 5u);
  EXPECT_GE(health.rearm_count, 5u);
  // Dial attempts inside the outage window fail and back off.
  EXPECT_GT(counters.reconnect_attempts, counters.reconnects);

  // The stream is alive again after the last outage.
  const std::size_t before = reads;
  session.advance(2.0);
  EXPECT_GT(reads, before);
  EXPECT_TRUE(session.supervisor().streaming());
  EXPECT_TRUE(session.endpoint().rospec_started());
}

TEST(SessionRecovery, KeepaliveWatchdogRecoversFromSilentStall) {
  std::unique_ptr<body::Subject> subject;
  SupervisedSessionConfig cfg;
  // No socket-level error reporting: the watchdog is the only defence.
  cfg.supervisor.detect_transport_loss = false;
  SupervisedSession session(cfg, make_sim(subject));
  session.advance(3.0);
  ASSERT_EQ(session.supervisor().state(), SessionState::Streaming);

  // Sever the link silently; writes vanish without an error.
  session.channel().force_disconnect();

  std::set<SessionState> seen;
  for (int i = 0; i < 48; ++i) {
    session.advance(0.25);
    seen.insert(session.supervisor().state());
  }

  const auto& health = session.supervisor().health();
  EXPECT_GE(health.watchdog_fires, 1u);
  // Silence passes through Degraded before the watchdog tears down.
  EXPECT_TRUE(seen.count(SessionState::Degraded));
  EXPECT_TRUE(seen.count(SessionState::Disconnected));
  EXPECT_GT(health.keepalives_sent, 0u);
  // ... and the session came back.
  EXPECT_EQ(session.supervisor().state(), SessionState::Streaming);
  EXPECT_GE(health.rearm_count, 2u);
  EXPECT_GT(health.time_in_state_s[static_cast<std::size_t>(
                SessionState::Degraded)],
            0.0);
}

// The probe's consecutive_failures streak must climb monotonically
// while every dial inside an outage fails, and collapse to ZERO after
// ONE completed re-arm — a single success wipes the streak, so the
// fleet's Dead verdict never lingers on a reader that just recovered.
TEST(SessionRecovery, ProbeFailureStreakResetsOnSingleSuccessfulRearm) {
  std::unique_ptr<body::Subject> subject;
  SupervisedSessionConfig cfg;
  cfg.faults.seed = 5;
  cfg.faults.disconnect_period_s = 10.0;
  cfg.faults.disconnect_duration_s = 4.0;  // outage spans t = 10 .. 14
  cfg.supervisor.backoff_max_s = 0.5;      // keep redials frequent
  SupervisedSession session(cfg, make_sim(subject));

  // The radio sim overshoots requested durations by a few percent
  // (inventory-round quantisation), so steer by now_s(), not by the
  // sum of advances.
  while (session.now_s() < 9.2) session.advance(0.25);
  ASSERT_LT(session.now_s(), 10.0);  // still before the outage
  ASSERT_TRUE(session.supervisor().streaming());
  EXPECT_EQ(session.supervisor().probe(session.now_s()).consecutive_failures,
            0u);

  while (session.now_s() < 11.5) session.advance(0.25);  // mid-outage
  const SessionProbe mid = session.supervisor().probe(session.now_s());
  EXPECT_FALSE(mid.streaming);
  EXPECT_GE(mid.consecutive_failures, 1u);

  while (session.now_s() < 13.2) session.advance(0.25);  // still down
  ASSERT_LT(session.now_s(), 14.0);
  const SessionProbe late = session.supervisor().probe(session.now_s());
  EXPECT_FALSE(late.streaming);
  EXPECT_GE(late.consecutive_failures, mid.consecutive_failures);
  EXPECT_GE(late.consecutive_failures, 3u);

  // Outage lifts at t = 14; the capped backoff redials within ~0.6 s
  // and a single ADD/ENABLE/START cycle completes.
  while (session.now_s() < 17.5) session.advance(0.25);
  ASSERT_LT(session.now_s(), 20.0);  // before the next outage
  const SessionProbe after = session.supervisor().probe(session.now_s());
  EXPECT_TRUE(after.streaming);
  EXPECT_EQ(after.consecutive_failures, 0u);
}

TEST(SessionRecovery, CorruptFramesResyncWithoutLosingTheSession) {
  std::unique_ptr<body::Subject> subject;
  SupervisedSessionConfig cfg;
  cfg.faults.seed = 7;
  cfg.faults.bit_flip_prob = 0.002;
  SupervisedSession session(cfg, make_sim(subject));

  std::size_t reads = 0;
  session.client().set_read_callback(
      [&reads](const core::TagRead&) { ++reads; });
  session.advance(20.0);

  // Corruption happened and was absorbed: frames were resynced past or
  // dropped at decode, yet reads kept flowing and the ROSpec stayed up.
  EXPECT_GT(session.channel().counters().bytes_corrupted, 0u);
  EXPECT_GT(session.client().framer_stats().resyncs +
                session.client().decode_errors(),
            0u);
  EXPECT_GT(reads, 400u);
  EXPECT_GE(session.supervisor().health().rearm_count, 1u);
  EXPECT_TRUE(session.endpoint().rospec_started());
}

TEST(SessionRecovery, StatusesReadNoResponseBeforeAnyExchange) {
  // Satellite: a fresh client must distinguish "never asked" from
  // "reader rejected".
  DuplexChannel channel;
  LlrpClient client(ClientConfig{}, channel);
  for (const auto type :
       {MessageType::AddRoSpecResponse, MessageType::EnableRoSpecResponse,
        MessageType::StartRoSpecResponse, MessageType::StopRoSpecResponse}) {
    EXPECT_EQ(client.last_status(type), StatusCode::NoResponse)
        << message_type_name(type);
  }

  // A rejected request flips only its own status.
  std::unique_ptr<body::Subject> subject;
  ReaderEndpoint endpoint(EndpointConfig{}, channel, make_sim(subject));
  client.send_start_rospec();  // no ADD/ENABLE first -> rejected
  endpoint.process_incoming();
  client.poll();
  EXPECT_EQ(client.last_status(MessageType::StartRoSpecResponse),
            StatusCode::ParameterError);
  EXPECT_EQ(client.last_status(MessageType::AddRoSpecResponse),
            StatusCode::NoResponse);

  // reset_session_state() returns everything to NoResponse.
  client.reset_session_state();
  EXPECT_EQ(client.last_status(MessageType::StartRoSpecResponse),
            StatusCode::NoResponse);
}

TEST(SessionRecovery, LatencyBurstsDelayButNeverReorder) {
  // Regression: a latency burst used to hold only its own write while
  // later writes passed straight through — the wire reordered messages,
  // and a stale STOP_ROSPEC could land after the next handshake's START
  // and silently disarm the reader. TCP delays; it never reorders.
  DuplexChannel inner;
  FaultPlan plan;
  plan.seed = 11;
  plan.latency_burst_prob = 0.5;
  plan.latency_s = 0.3;
  FaultyChannel channel(inner, plan);

  std::vector<std::uint8_t> sent_c, sent_r, got_c, got_r;
  std::uint8_t next = 0;
  for (int step = 0; step < 200; ++step) {
    channel.advance_to(step * 0.05);
    // Both directions, varying write sizes, reading as we go so any
    // fresh write that overtook a held one would surface immediately.
    for (int k = 0; k <= step % 3; ++k) {
      const std::uint8_t cb[1] = {next};
      const std::uint8_t rb[1] = {static_cast<std::uint8_t>(next ^ 0xFF)};
      sent_c.push_back(cb[0]);
      channel.write(DuplexChannel::Side::Client, cb);
      sent_r.push_back(rb[0]);
      channel.write(DuplexChannel::Side::Reader, rb);
      ++next;
    }
    for (std::uint8_t b : channel.read(DuplexChannel::Side::Reader))
      got_r.push_back(b);
    for (std::uint8_t b : channel.read(DuplexChannel::Side::Client))
      got_c.push_back(b);
  }
  channel.advance_to(200 * 0.05 + plan.latency_s);
  for (std::uint8_t b : channel.read(DuplexChannel::Side::Reader))
    got_r.push_back(b);
  for (std::uint8_t b : channel.read(DuplexChannel::Side::Client))
    got_c.push_back(b);

  EXPECT_GT(channel.counters().bytes_delayed, 0u);
  // Delayed, possibly — reordered or lost, never.
  EXPECT_EQ(got_r, sent_c);  // client writes surface at the reader side
  EXPECT_EQ(got_c, sent_r);
}

TEST(SessionRecovery, SeedSweptFaultStormNeverWedgesTheSupervisor) {
  // Mixed fault storm across seeds: whatever the byte stream does, the
  // supervisor must keep cycling and end every run having re-armed.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::unique_ptr<body::Subject> subject;
    SupervisedSessionConfig cfg;
    cfg.faults.seed = seed;
    cfg.faults.byte_drop_prob = 0.001;
    cfg.faults.bit_flip_prob = 0.002;
    cfg.faults.partial_write_prob = 0.01;
    cfg.faults.latency_burst_prob = 0.02;
    cfg.faults.latency_s = 0.3;
    cfg.faults.disconnect_period_s = 5.0;
    cfg.faults.disconnect_duration_s = 0.5;
    SupervisedSession session(cfg, make_sim(subject));
    session.advance(18.0);
    EXPECT_GE(session.supervisor().health().rearm_count, 1u)
        << "seed " << seed;
    EXPECT_GT(session.client().reads_decoded(), 0u) << "seed " << seed;
  }
}

// --- graceful degradation acceptance ---------------------------------------

struct SampledRun {
  std::vector<double> rate_bpm;
  std::vector<std::uint8_t> healthy;  // SignalHealth::Ok at sample time
  std::size_t flagged = 0;            // samples not Ok after warmup
};

SampledRun run_monitored(const FaultPlan& faults, double duration_s) {
  std::unique_ptr<body::Subject> subject;
  SupervisedSessionConfig cfg;
  cfg.faults = faults;
  SupervisedSession session(cfg, make_sim(subject));

  core::RealtimePipeline pipeline{core::PipelineConfig{}};
  double last_pushed = -1.0;
  session.client().set_read_callback([&](const core::TagRead& r) {
    // Host-side sanity gate: a bit-flipped timestamp that jumped out of
    // the plausible window must not drag the pipeline clock with it.
    const double now = session.now_s();
    // Legit reads are never from the future (bursts only delay them),
    // so the forward bound is tight: a small forward-corrupted stamp
    // would otherwise drag last_pushed ahead and shadow real reads.
    if (r.time_s < now - 5.0 || r.time_s > now + 0.05) return;
    if (r.time_s < last_pushed) return;  // decoder-garbled ordering
    last_pushed = r.time_s;
    pipeline.push(r);
  });

  SampledRun out;
  const int steps = static_cast<int>(duration_s);
  for (int step = 0; step < steps; ++step) {
    session.advance(1.0);
    pipeline.advance_to(session.now_s());
    if (step + 1 < 16) continue;  // pipeline warm-up
    const core::UserAnalysis* a = pipeline.latest_analysis(1);
    const bool ok = a != nullptr && a->health == core::SignalHealth::Ok &&
                    a->rate.reliable;
    out.rate_bpm.push_back(a == nullptr ? 0.0 : a->rate.rate_bpm);
    out.healthy.push_back(ok ? 1 : 0);
    if (!ok) ++out.flagged;
  }
  return out;
}

TEST(SessionRecovery, FaultyRunTracksCleanRunOnHealthyWindows) {
  // The ISSUE's acceptance scenario: ~1% byte corruption, a periodic
  // 2-second hard outage and latency stalls. The supervisor must keep
  // re-arming, the pipeline must flag the gap windows via SignalHealth,
  // and on the windows it still calls Ok the breathing-rate estimate
  // must stay within 0.5 bpm of the fault-free run.
  const double duration_s = 135.0;
  const SampledRun clean = run_monitored(FaultPlan::none(), duration_s);

  FaultPlan storm;
  storm.seed = 2024;
  storm.bit_flip_prob = 0.01;  // ~1% of transported bytes corrupted
  storm.latency_burst_prob = 0.02;
  storm.latency_s = 0.4;
  storm.disconnect_period_s = 45.0;
  storm.disconnect_duration_s = 2.0;
  const SampledRun faulty = run_monitored(storm, duration_s);

  ASSERT_EQ(clean.rate_bpm.size(), faulty.rate_bpm.size());
  const std::size_t n = clean.rate_bpm.size();
  ASSERT_GT(n, 60u);

  // The clean run is healthy for nearly the whole span and nails the
  // metronome on every window it calls healthy. (The estimator itself
  // drops rate.reliable on the odd window — those are flagged, which is
  // the contract: wrong-and-flagged is fine, wrong-and-Ok is not.)
  EXPECT_LT(clean.flagged, n / 5);
  for (std::size_t i = 0; i < n; ++i) {
    if (clean.healthy[i]) {
      EXPECT_NEAR(clean.rate_bpm[i], kTrueRateBpm, 1.0) << "sample " << i;
    }
  }

  // Compare the runs where BOTH claim health: that is the set of windows
  // the degradation machinery vouches for under faults.
  std::vector<std::uint8_t> both(n);
  std::size_t compared = 0;
  for (std::size_t i = 0; i < n; ++i) {
    both[i] = clean.healthy[i] && faulty.healthy[i];
    compared += both[i];
  }
  ASSERT_GT(compared, 10u);  // outage-free stretches still vouched for

  double clean_mean = 0.0, faulty_mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!both[i]) continue;
    clean_mean += clean.rate_bpm[i];
    faulty_mean += faulty.rate_bpm[i];
  }
  clean_mean /= static_cast<double>(compared);
  faulty_mean /= static_cast<double>(compared);
  // The ISSUE bound: on healthy windows the faulty run's rate stays
  // within 0.5 bpm of the fault-free run.
  EXPECT_NEAR(faulty_mean, clean_mean, 0.5);
  // Per-window the residual read loss costs at most ~1.5 bpm of jitter.
  const double worst = core::max_rate_error_masked(
      faulty.rate_bpm, clean.rate_bpm, both);
  EXPECT_LE(worst, 1.5);
  const double acc = core::mean_accuracy_masked(
      faulty.rate_bpm, clean.rate_bpm, both);
  EXPECT_GT(acc, 0.95);

  // The outages were noticed, not glossed over.
  EXPECT_GT(faulty.flagged, 0u);
}

std::uint64_t counter_value(const obs::MetricsSnapshot& snap,
                            const std::string& name) {
  for (const obs::CounterSample& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  ADD_FAILURE() << "counter not found: " << name;
  return 0;
}

double gauge_value(const obs::MetricsSnapshot& snap, const std::string& name,
                   const std::string& label_value = {}) {
  for (const obs::GaugeSample& g : snap.gauges) {
    if (g.name == name && g.label_value == label_value) return g.value;
  }
  ADD_FAILURE() << "gauge not found: " << name << " " << label_value;
  return 0.0;
}

// An observability hub bound to the supervisor must mirror every
// SupervisorHealth field through a faulted run: llrp_* counters equal
// the health struct, the state gauge tracks the live enum, time-in-state
// gauges match per state, and every state change leaves exactly one
// Instant mark on the "llrp.session" trace stage.
TEST(SessionRecovery, ObservabilityMirrorsSupervisorHealth) {
  std::unique_ptr<body::Subject> subject;
  SupervisedSessionConfig cfg;
  cfg.faults.seed = 31;
  cfg.faults.disconnect_period_s = 4.0;
  cfg.faults.disconnect_duration_s = 0.75;
  SupervisedSession session(cfg, make_sim(subject));

  obs::Observability hub;
  session.supervisor().bind_observability(hub);
  session.advance(21.5);  // outages at t = 4, 8, 12, 16, 20

  const SupervisorHealth& health = session.supervisor().health();
  const obs::MetricsSnapshot snap = hub.metrics().snapshot();
  EXPECT_EQ(counter_value(snap, "llrp_reconnects_total"), health.reconnects);
  EXPECT_EQ(counter_value(snap, "llrp_reconnect_failures_total"),
            health.reconnect_failures);
  EXPECT_EQ(counter_value(snap, "llrp_watchdog_fires_total"),
            health.watchdog_fires);
  EXPECT_EQ(counter_value(snap, "llrp_handshake_failures_total"),
            health.handshake_failures);
  EXPECT_EQ(counter_value(snap, "llrp_handshake_retransmits_total"),
            health.handshake_retransmits);
  EXPECT_EQ(counter_value(snap, "llrp_rearms_total"), health.rearm_count);
  EXPECT_EQ(counter_value(snap, "llrp_keepalives_sent_total"),
            health.keepalives_sent);
  EXPECT_EQ(counter_value(snap, "llrp_state_changes_total"),
            health.state_changes);
  // The scenario actually exercised the recovery path.
  EXPECT_GE(health.reconnects, 5u);

  EXPECT_DOUBLE_EQ(
      gauge_value(snap, "llrp_session_state"),
      static_cast<double>(session.supervisor().state()));
  for (std::size_t i = 0; i < kSessionStateCount; ++i) {
    EXPECT_DOUBLE_EQ(
        gauge_value(snap, "llrp_time_in_state_seconds",
                    session_state_name(static_cast<SessionState>(i))),
        health.time_in_state_s[i])
        << session_state_name(static_cast<SessionState>(i));
  }

  const obs::TraceSnapshot trace = hub.trace().snapshot();
  EXPECT_EQ(trace.dropped, 0u);
  std::size_t marks = 0;
  for (const obs::TraceEvent& e : trace.events) {
    if (trace.stages[e.stage] == "llrp.session" &&
        e.kind == obs::SpanKind::Instant)
      ++marks;
  }
  EXPECT_EQ(marks, health.state_changes);
}

}  // namespace
}  // namespace tagbreathe::llrp
