// End-to-end integration: simulator -> TagBreathe pipeline -> rate.
// These are the paper's headline claims in miniature: <1 bpm mean error
// at the Table-I defaults, working multi-user separation, fusion gain.
#include <gtest/gtest.h>

#include <memory>

#include "body/breathing_model.hpp"
#include "body/subject.hpp"
#include "common/units.hpp"
#include "core/metrics.hpp"
#include "core/monitor.hpp"
#include "rfid/reader.hpp"

namespace tagbreathe {
namespace {

using body::BreathingModel;
using body::BreathShape;
using body::MetronomeSchedule;
using body::Subject;
using body::SubjectConfig;
using core::BreathMonitor;
using core::MonitorConfig;
using rfid::Epc96;
using rfid::ReaderConfig;
using rfid::ReaderSim;

struct Scene {
  std::vector<std::unique_ptr<Subject>> subjects;
  std::vector<std::unique_ptr<rfid::TagBehavior>> tags;
};

Scene make_scene(std::vector<double> rates_bpm, double distance_m,
                 int tags_per_user = 3, std::uint64_t seed = 99) {
  Scene scene;
  for (std::size_t u = 0; u < rates_bpm.size(); ++u) {
    SubjectConfig cfg;
    cfg.user_id = u + 1;
    // Users side by side (paper Fig. 13 setup), facing the antenna at the
    // origin.
    cfg.position = {distance_m, 0.8 * static_cast<double>(u), 0.0};
    cfg.heading_rad = common::kPi;
    cfg.chest_style = 0.3 + 0.2 * static_cast<double>(u % 3);
    cfg.sway_seed = seed + u;
    scene.subjects.push_back(std::make_unique<Subject>(
        cfg,
        BreathingModel(MetronomeSchedule(rates_bpm[u]), BreathShape{})));
  }
  const auto& sites = Subject::all_sites();
  for (const auto& subject : scene.subjects) {
    for (int i = 0; i < tags_per_user; ++i) {
      scene.tags.push_back(std::make_unique<rfid::BodyTag>(
          Epc96::from_user_tag(subject->user_id(),
                               static_cast<std::uint32_t>(i + 1)),
          subject.get(), sites[static_cast<std::size_t>(i) % sites.size()]));
    }
  }
  return scene;
}

TEST(EndToEnd, SingleUserDefaultsWithinOneBpm) {
  // Table-I defaults: 1 user, 3 tags, 4 m, 10 bpm, sitting, facing.
  Scene scene = make_scene({10.0}, 4.0);
  ReaderConfig rcfg;
  rcfg.seed = 42;
  ReaderSim sim(rcfg, std::move(scene.tags));
  const auto reads = sim.run(120.0);
  ASSERT_GT(reads.size(), 1000u);

  BreathMonitor monitor;
  const auto analyses = monitor.analyze(reads);
  ASSERT_EQ(analyses.size(), 1u);
  const auto& a = analyses[0];
  EXPECT_EQ(a.user_id, 1u);
  EXPECT_TRUE(a.rate.reliable);
  EXPECT_NEAR(a.rate.rate_bpm, 10.0, 1.0);
  EXPECT_GT(core::breathing_rate_accuracy(a.rate.rate_bpm, 10.0), 0.9);
}

TEST(EndToEnd, RateSweepUnderOneBpmMeanError) {
  // Paper: "less than 1 breath per minute error on average for various
  // breathing rates" (5-20 bpm). The claim is about the mean across
  // rates and trials, not each single 2-minute trial.
  double total_error = 0.0;
  int trials = 0;
  for (double rate : {5.0, 10.0, 15.0, 20.0}) {
    for (int t = 0; t < 3; ++t) {
      Scene scene =
          make_scene({rate}, 4.0, 3, 7 + static_cast<int>(rate) + 31 * t);
      ReaderConfig rcfg;
      rcfg.seed = 1000 + static_cast<std::uint64_t>(rate) + 977 * t;
      ReaderSim sim(rcfg, std::move(scene.tags));
      const auto reads = sim.run(120.0);

      BreathMonitor monitor;
      const auto analyses = monitor.analyze(reads);
      ASSERT_EQ(analyses.size(), 1u) << "rate " << rate;
      const double err = core::rate_error_bpm(analyses[0].rate.rate_bpm, rate);
      EXPECT_LT(err, 3.0) << "single-trial blow-up at rate " << rate
                          << " trial " << t;
      total_error += err;
      ++trials;
    }
  }
  EXPECT_LT(total_error / trials, 1.0);
}

TEST(EndToEnd, FourUsersSeparatedAndAccurate) {
  // Fig. 13: four users side by side at 4 m, all ~95% accurate.
  Scene scene = make_scene({8.0, 11.0, 14.0, 17.0}, 4.0);
  ReaderConfig rcfg;
  rcfg.seed = 17;
  ReaderSim sim(rcfg, std::move(scene.tags));
  const auto reads = sim.run(120.0);

  BreathMonitor monitor;
  const auto analyses = monitor.analyze(reads);
  ASSERT_EQ(analyses.size(), 4u);
  const double truth[] = {8.0, 11.0, 14.0, 17.0};
  for (std::size_t u = 0; u < 4; ++u) {
    EXPECT_EQ(analyses[u].user_id, u + 1);
    const double acc = core::breathing_rate_accuracy(
        analyses[u].rate.rate_bpm, truth[u]);
    EXPECT_GT(acc, 0.85) << "user " << u + 1 << " est "
                         << analyses[u].rate.rate_bpm;
  }
}

TEST(EndToEnd, FusionBeatsSingleTagAtLongRange) {
  // Sec. IV-C's motivation: fusing the tag array extracts weak signals
  // that a single tag misses. Compare mean error at 6 m over seeds.
  double err_fused = 0.0, err_single = 0.0;
  constexpr int kTrials = 5;
  for (int trial = 0; trial < kTrials; ++trial) {
    Scene scene = make_scene({12.0}, 6.0, 3, 300 + trial);
    ReaderConfig rcfg;
    rcfg.seed = 9000 + static_cast<std::uint64_t>(trial);
    ReaderSim sim(rcfg, std::move(scene.tags));
    const auto reads = sim.run(120.0);

    MonitorConfig fused_cfg;
    MonitorConfig single_cfg;
    single_cfg.fuse_tags = false;
    const auto fused = BreathMonitor(fused_cfg).analyze(reads);
    const auto single = BreathMonitor(single_cfg).analyze(reads);
    ASSERT_EQ(fused.size(), 1u);
    ASSERT_EQ(single.size(), 1u);
    err_fused += core::rate_error_bpm(fused[0].rate.rate_bpm, 12.0);
    err_single += core::rate_error_bpm(single[0].rate.rate_bpm, 12.0);
  }
  err_fused /= kTrials;
  err_single /= kTrials;
  EXPECT_LE(err_fused, err_single + 0.35)
      << "fused " << err_fused << " single " << err_single;
  EXPECT_LT(err_fused, 1.5);
}

}  // namespace
}  // namespace tagbreathe
