// Unit + integration tests: llrp-lite wire format, framing, parameters,
// tag reports, and the client <-> reader-endpoint session.
#include <gtest/gtest.h>

#include <memory>

#include "body/subject.hpp"
#include "common/units.hpp"
#include "core/monitor.hpp"
#include "llrp/bytes.hpp"
#include "llrp/message.hpp"
#include "llrp/params.hpp"
#include "llrp/session.hpp"
#include "llrp/transport.hpp"

namespace tagbreathe::llrp {
namespace {

// --- bytes -------------------------------------------------------------

TEST(Bytes, RoundTripAllWidths) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i16(-1234);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i16(), -1234);
  EXPECT_TRUE(r.empty());
}

TEST(Bytes, BigEndianOnTheWire) {
  ByteWriter w;
  w.u16(0x0102);
  EXPECT_EQ(w.data()[0], 0x01);
  EXPECT_EQ(w.data()[1], 0x02);
}

TEST(Bytes, TruncationThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  r.u8();
  EXPECT_THROW(r.u16(), DecodeError);
}

TEST(Bytes, PatchLength) {
  ByteWriter w;
  w.u32(0);
  w.u8(9);
  w.patch_u32(0, 5);
  ByteReader r(w.data());
  EXPECT_EQ(r.u32(), 5u);
  EXPECT_THROW(w.patch_u32(2, 1), std::out_of_range);
}

TEST(Bytes, SubReaderIsolatesRegion) {
  ByteWriter w;
  w.u16(1);
  w.u16(2);
  w.u16(3);
  ByteReader r(w.data());
  r.u16();
  ByteReader sub = r.sub(2);
  EXPECT_EQ(sub.u16(), 2u);
  EXPECT_TRUE(sub.empty());
  EXPECT_EQ(r.u16(), 3u);
}

// --- messages -----------------------------------------------------------

TEST(Message, HeaderRoundTrip) {
  Message m;
  m.type = MessageType::AddRoSpec;
  m.message_id = 77;
  m.body = {1, 2, 3};
  const auto wire = encode_message(m);
  EXPECT_EQ(wire.size(), kHeaderBytes + 3);
  const Message back = decode_message(wire);
  EXPECT_EQ(back.type, MessageType::AddRoSpec);
  EXPECT_EQ(back.message_id, 77u);
  EXPECT_EQ(back.body, m.body);
}

TEST(Message, RejectsBadVersionAndLength) {
  Message m;
  m.type = MessageType::KeepAlive;
  auto wire = encode_message(m);
  // Corrupt the version bits.
  wire[0] = static_cast<std::uint8_t>(wire[0] ^ 0x30);
  EXPECT_THROW(decode_message(wire), DecodeError);

  auto wire2 = encode_message(m);
  wire2[5] = 99;  // length mismatch
  EXPECT_THROW(decode_message(wire2), DecodeError);
}

TEST(Message, FramerReassemblesSplitStream) {
  Message a;
  a.type = MessageType::KeepAlive;
  a.message_id = 1;
  Message b;
  b.type = MessageType::RoAccessReport;
  b.message_id = 2;
  b.body = std::vector<std::uint8_t>(37, 0xEE);
  auto wire = encode_message(a);
  const auto wb = encode_message(b);
  wire.insert(wire.end(), wb.begin(), wb.end());

  MessageFramer framer;
  Message out;
  // Feed byte by byte: messages must pop exactly when complete.
  std::size_t popped = 0;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    framer.feed(std::span<const std::uint8_t>(&wire[i], 1));
    while (framer.next(out)) {
      ++popped;
      if (popped == 1) {
        EXPECT_EQ(out.message_id, 1u);
      }
      if (popped == 2) {
        EXPECT_EQ(out.message_id, 2u);
        EXPECT_EQ(out.body.size(), 37u);
      }
    }
  }
  EXPECT_EQ(popped, 2u);
  EXPECT_EQ(framer.buffered_bytes(), 0u);
}

TEST(Message, TypeNames) {
  EXPECT_STREQ(message_type_name(MessageType::RoAccessReport),
               "RO_ACCESS_REPORT");
  EXPECT_STREQ(message_type_name(MessageType::AddRoSpec), "ADD_ROSPEC");
}

// --- parameters -----------------------------------------------------------

TEST(Params, TlvRoundTripWithNesting) {
  Param outer;
  outer.type = static_cast<std::uint16_t>(ParamType::RoSpec);
  outer.value = {0, 0, 0, 1, 0, 0};  // u32 id, u8 priority, u8 state
  Param inner;
  inner.type = static_cast<std::uint16_t>(ParamType::RoBoundarySpec);
  Param leaf;
  leaf.type = static_cast<std::uint16_t>(ParamType::RoSpecStartTrigger);
  leaf.value = {0};
  inner.children.push_back(leaf);
  outer.children.push_back(inner);

  ByteWriter w;
  encode_param(w, outer);
  ByteReader r(w.data());
  const auto back = decode_params(r);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].type, outer.type);
  // Note: RoSpec decodes children after its value region is consumed by
  // our encoder layout; boundary spec must be present.
  bool found = false;
  for (const auto& c : back[0].children)
    if (c.type == static_cast<std::uint16_t>(ParamType::RoBoundarySpec))
      found = true;
  EXPECT_TRUE(found);
}

TEST(Params, TvRoundTrip) {
  Param tv;
  tv.tv = true;
  tv.type = static_cast<std::uint16_t>(ParamType::AntennaId);
  tv.value = {0x00, 0x03};
  ByteWriter w;
  encode_param(w, tv);
  EXPECT_EQ(w.data()[0], 0x81);  // marker bit | type 1
  ByteReader r(w.data());
  const auto back = decode_params(r);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_TRUE(back[0].tv);
  EXPECT_EQ(back[0].value, tv.value);
}

TEST(Params, TvValidation) {
  Param bad;
  bad.tv = true;
  bad.type = static_cast<std::uint16_t>(ParamType::AntennaId);
  bad.value = {1};  // wrong length
  ByteWriter w;
  EXPECT_THROW(encode_param(w, bad), std::invalid_argument);
  EXPECT_THROW(tv_value_length(99), DecodeError);
}

TEST(Params, StatusRoundTrip) {
  ByteWriter w;
  encode_param(w, make_status(StatusCode::ParameterError));
  ByteReader r(w.data());
  EXPECT_EQ(parse_status(decode_params(r)), StatusCode::ParameterError);
  EXPECT_THROW(parse_status({}), DecodeError);
}

// --- tag reports -----------------------------------------------------------

core::TagRead sample_read() {
  core::TagRead read;
  read.time_s = 12.345678;
  read.epc = rfid::Epc96::from_user_tag(7, 3);
  read.antenna_id = 2;
  read.channel_index = 4;
  read.frequency_hz = rfid::ChannelPlan::paper_plan().frequency_hz(4);
  read.rssi_dbm = -57.5;
  read.phase_rad = 2.7341;
  read.doppler_hz = -1.875;  // exactly -30/16
  return read;
}

TEST(TagReports, RoundTripPreservesFieldsWithinWireQuantisation) {
  const core::TagRead original = sample_read();
  const auto body = encode_tag_reports(std::vector<TagReportEntry>{
      to_wire(original)});
  const auto entries = decode_tag_reports(body);
  ASSERT_EQ(entries.size(), 1u);
  const core::TagRead back =
      from_wire(entries[0], rfid::ChannelPlan::paper_plan());

  EXPECT_EQ(back.epc, original.epc);
  EXPECT_EQ(back.antenna_id, original.antenna_id);
  EXPECT_EQ(back.channel_index, original.channel_index);
  EXPECT_DOUBLE_EQ(back.frequency_hz, original.frequency_hz);
  EXPECT_NEAR(back.time_s, original.time_s, 1e-6);          // microseconds
  EXPECT_NEAR(back.rssi_dbm, original.rssi_dbm, 0.005);     // centi-dBm
  EXPECT_NEAR(back.phase_rad, original.phase_rad,
              common::kTwoPi / 4096.0);                     // 12-bit
  EXPECT_NEAR(back.doppler_hz, original.doppler_hz, 1.0 / 16.0);
}

TEST(TagReports, BatchOfMany) {
  std::vector<TagReportEntry> entries;
  for (int i = 0; i < 50; ++i) {
    core::TagRead r = sample_read();
    r.time_s = i * 0.016;
    r.epc = rfid::Epc96::from_user_tag(1, static_cast<std::uint32_t>(i % 3));
    entries.push_back(to_wire(r));
  }
  const auto body = encode_tag_reports(entries);
  const auto back = decode_tag_reports(body);
  ASSERT_EQ(back.size(), 50u);
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(back[static_cast<std::size_t>(i)].epc.tag_id(),
              static_cast<std::uint32_t>(i % 3));
}

TEST(TagReports, NegativeDopplerSurvives) {
  core::TagRead r = sample_read();
  r.doppler_hz = -12.5;
  const auto back = decode_tag_reports(
      encode_tag_reports(std::vector<TagReportEntry>{to_wire(r)}));
  ASSERT_EQ(back.size(), 1u);
  EXPECT_LT(static_cast<double>(back[0].doppler_16th_hz), 0.0);
}

// --- transport ---------------------------------------------------------------

TEST(Transport, DuplexDirectionality) {
  DuplexChannel ch;
  const std::vector<std::uint8_t> ping{1, 2, 3};
  ch.write(DuplexChannel::Side::Client, ping);
  EXPECT_EQ(ch.pending(DuplexChannel::Side::Reader), 3u);
  EXPECT_EQ(ch.pending(DuplexChannel::Side::Client), 0u);
  EXPECT_EQ(ch.read(DuplexChannel::Side::Reader), ping);
  EXPECT_EQ(ch.pending(DuplexChannel::Side::Reader), 0u);
}

TEST(Transport, PartialReads) {
  DuplexChannel ch;
  ch.write(DuplexChannel::Side::Reader, std::vector<std::uint8_t>{9, 8, 7});
  const auto first = ch.read(DuplexChannel::Side::Client, 2);
  EXPECT_EQ(first, (std::vector<std::uint8_t>{9, 8}));
  const auto rest = ch.read(DuplexChannel::Side::Client);
  EXPECT_EQ(rest, (std::vector<std::uint8_t>{7}));
}

// --- full session ---------------------------------------------------------------

std::unique_ptr<rfid::ReaderSim> make_sim(
    std::unique_ptr<body::Subject>& subject_out, double rate_bpm = 12.0) {
  body::SubjectConfig cfg;
  cfg.user_id = 1;
  cfg.position = {3.0, 0.0, 0.0};
  cfg.heading_rad = common::kPi;
  subject_out = std::make_unique<body::Subject>(
      cfg, body::BreathingModel(body::MetronomeSchedule(rate_bpm), {}));
  std::vector<std::unique_ptr<rfid::TagBehavior>> tags;
  for (int i = 0; i < 3; ++i) {
    tags.push_back(std::make_unique<rfid::BodyTag>(
        rfid::Epc96::from_user_tag(1, static_cast<std::uint32_t>(i + 1)),
        subject_out.get(), body::Subject::all_sites()[static_cast<std::size_t>(i)]));
  }
  rfid::ReaderConfig rc;
  rc.seed = 77;
  return std::make_unique<rfid::ReaderSim>(rc, std::move(tags));
}

TEST(Session, HandshakeThenReportsFlow) {
  std::unique_ptr<body::Subject> subject;
  LlrpSession session(ClientConfig{}, EndpointConfig{},
                      make_sim(subject));
  EXPECT_FALSE(session.endpoint().rospec_started());
  session.start();
  EXPECT_TRUE(session.endpoint().rospec_started());

  std::vector<core::TagRead> reads;
  session.client().set_read_callback(
      [&reads](const core::TagRead& r) { reads.push_back(r); });
  session.advance(5.0);
  EXPECT_GT(reads.size(), 200u);
  EXPECT_GT(session.client().reports_received(), 10u);

  session.stop();
  EXPECT_FALSE(session.endpoint().rospec_started());
  const std::size_t before = reads.size();
  session.advance(2.0);
  EXPECT_EQ(reads.size(), before);  // no reports while stopped
}

TEST(Session, StartWithoutAddFails) {
  std::unique_ptr<body::Subject> subject;
  DuplexChannel channel;
  ReaderEndpoint endpoint(EndpointConfig{}, channel, make_sim(subject));
  LlrpClient client(ClientConfig{}, channel);
  client.send_start_rospec();  // no ADD/ENABLE first
  endpoint.process_incoming();
  client.poll();
  EXPECT_EQ(client.last_status(MessageType::StartRoSpecResponse),
            StatusCode::ParameterError);
}


TEST(Session, CapabilitiesKeepaliveAndEvents) {
  std::unique_ptr<body::Subject> subject;
  LlrpSession session(ClientConfig{}, EndpointConfig{},
                      make_sim(subject));

  // Capability discovery before anything is configured.
  session.client().send_get_capabilities();
  session.endpoint().process_incoming();
  session.client().poll();
  ASSERT_TRUE(session.client().capabilities().has_value());
  const ReaderCapabilities& caps = *session.client().capabilities();
  EXPECT_EQ(caps.max_antennas, 1u);     // make_sim uses one antenna
  EXPECT_EQ(caps.channel_count, 10u);   // paper plan
  EXPECT_EQ(caps.channel_spacing_khz, 500u);
  EXPECT_TRUE(caps.reports_phase);
  EXPECT_TRUE(caps.reports_doppler);
  EXPECT_EQ(caps.vendor_id, kVendorId);

  // Keepalive echo.
  session.client().send_keepalive();
  session.endpoint().process_incoming();
  session.client().poll();
  EXPECT_EQ(session.client().keepalives_received(), 1u);

  // Lifecycle events around start/stop.
  session.start();
  session.advance(0.5);
  session.stop();
  const auto& events = session.client().reader_events();
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events.front(), ReaderEventKind::RoSpecStarted);
  EXPECT_EQ(events.back(), ReaderEventKind::RoSpecStopped);
}

TEST(Params, CapabilitiesRoundTrip) {
  ReaderCapabilities caps;
  caps.max_antennas = 4;
  caps.channel_count = 50;
  caps.first_channel_khz = 902750;
  caps.channel_spacing_khz = 500;
  caps.reports_doppler = false;
  const auto back = decode_capabilities(encode_capabilities(caps));
  EXPECT_EQ(back.max_antennas, 4u);
  EXPECT_EQ(back.channel_count, 50u);
  EXPECT_EQ(back.first_channel_khz, 902750u);
  EXPECT_TRUE(back.reports_phase);
  EXPECT_FALSE(back.reports_doppler);
}

TEST(Params, ReaderEventRoundTrip) {
  const auto body = encode_reader_event(ReaderEventKind::RoSpecStopped,
                                        123456789ULL);
  std::uint64_t ts = 0;
  EXPECT_EQ(decode_reader_event(body, ts), ReaderEventKind::RoSpecStopped);
  EXPECT_EQ(ts, 123456789ULL);
}

TEST(Session, WireFedMonitorMatchesDirectAnalysis) {
  // The acid test of the protocol layer: feeding TagBreathe through the
  // llrp-lite wire must give the same breathing rate as consuming the
  // simulator output directly (within wire quantisation).
  std::unique_ptr<body::Subject> subject;
  LlrpSession session(ClientConfig{}, EndpointConfig{},
                      make_sim(subject, 14.0));
  session.start();
  std::vector<core::TagRead> wire_reads;
  session.client().set_read_callback(
      [&wire_reads](const core::TagRead& r) { wire_reads.push_back(r); });
  session.advance(60.0);

  core::BreathMonitor monitor;
  const auto analyses = monitor.analyze(wire_reads);
  ASSERT_EQ(analyses.size(), 1u);
  EXPECT_NEAR(analyses[0].rate.rate_bpm, 14.0, 1.0);
}

}  // namespace
}  // namespace tagbreathe::llrp
