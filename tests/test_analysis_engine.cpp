// Multi-core analysis engine tests: FFT plan cache vs the legacy
// one-shot path (pow2, Bluestein, prime lengths), the real-signal
// packing transform, allocation-free steady-state filtering (counting
// operator-new hook), concurrent plan lookups (run under TSan via the
// `concurrency` ctest label), the AnalysisPool contract, dirty-window
// coasting, and serial-vs-parallel pipeline determinism (byte-identical
// chaos-soak event logs).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <complex>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <thread>
#include <vector>

#include "common/units.hpp"
#include "core/analysis_pool.hpp"
#include "core/chaos.hpp"
#include "core/monitor.hpp"
#include "core/pipeline.hpp"
#include "obs/observability.hpp"
#include "signal/fft.hpp"
#include "signal/spectrum.hpp"

// --- counting operator-new hook ---------------------------------------------
// Replaces the global allocation functions for this binary so the
// steady-state zero-allocation claim is asserted, not assumed. The
// counter is always live (cheap relaxed increment); tests read deltas.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

// GCC pairs call sites against the *default* operator new and warns that
// std::free mismatches it; our replacement new allocates with malloc, so
// the pairing is in fact correct.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tagbreathe {
namespace {

using signal::cdouble;
using signal::FftDirection;
using signal::FftPlan;
using signal::FftScratch;
using signal::RealFftPlan;

std::vector<cdouble> test_signal(std::size_t n, double stride = 0.37) {
  std::vector<cdouble> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = stride * static_cast<double>(i);
    x[i] = cdouble(std::sin(1.3 * t) + 0.2 * std::cos(5.1 * t),
                   0.4 * std::sin(2.9 * t));
  }
  return x;
}

/// O(n^2) reference DFT.
std::vector<cdouble> naive_dft(const std::vector<cdouble>& x, bool inverse) {
  const std::size_t n = x.size();
  std::vector<cdouble> out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    cdouble sum(0.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = sign * common::kTwoPi * static_cast<double>(k) *
                           static_cast<double>(j) / static_cast<double>(n);
      sum += x[j] * cdouble(std::cos(angle), std::sin(angle));
    }
    out[k] = inverse ? sum / static_cast<double>(n) : sum;
  }
  return out;
}

// --- next_pow2 contract -----------------------------------------------------

TEST(NextPow2, DocumentedContract) {
  EXPECT_EQ(signal::next_pow2(0), 1u);  // trivial size by contract
  EXPECT_EQ(signal::next_pow2(1), 1u);
  EXPECT_EQ(signal::next_pow2(2), 2u);
  EXPECT_EQ(signal::next_pow2(3), 4u);
  EXPECT_EQ(signal::next_pow2(4096), 4096u);
  EXPECT_EQ(signal::next_pow2(4097), 8192u);
  const std::size_t max_pow2 =
      (std::numeric_limits<std::size_t>::max() >> 1) + 1;
  EXPECT_EQ(signal::next_pow2(max_pow2), max_pow2);
  EXPECT_THROW(signal::next_pow2(max_pow2 + 1), std::overflow_error);
  EXPECT_THROW(signal::next_pow2(std::numeric_limits<std::size_t>::max()),
               std::overflow_error);
}

// --- plan output vs legacy / reference paths --------------------------------

class PlanSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PlanSizes, PlanMatchesNaiveDftAndRoundTrips) {
  const std::size_t n = GetParam();
  const auto x = test_signal(n);
  const auto expected = naive_dft(x, /*inverse=*/false);

  FftScratch scratch;
  std::vector<cdouble> out(n);
  FftPlan::get(n, FftDirection::Forward)->execute(x, out, scratch);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(out[k].real(), expected[k].real(), 1e-8) << "n=" << n << " k=" << k;
    EXPECT_NEAR(out[k].imag(), expected[k].imag(), 1e-8) << "n=" << n << " k=" << k;
  }

  // Inverse plan round-trips to the input.
  std::vector<cdouble> back(n);
  FftPlan::get(n, FftDirection::Inverse)->execute(out, back, scratch);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(back[k].real(), x[k].real(), 1e-9);
    EXPECT_NEAR(back[k].imag(), x[k].imag(), 1e-9);
  }

  // One-shot API (which delegates to the cache) agrees with the plan.
  const auto one_shot = signal::fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(one_shot[k].real(), out[k].real(), 1e-10);
    EXPECT_NEAR(one_shot[k].imag(), out[k].imag(), 1e-10);
  }
}

TEST_P(PlanSizes, InPlaceExecutionMatchesOutOfPlace) {
  const std::size_t n = GetParam();
  const auto x = test_signal(n, 0.21);
  FftScratch scratch;
  std::vector<cdouble> out(n);
  const auto plan = FftPlan::get(n, FftDirection::Forward);
  plan->execute(x, out, scratch);
  std::vector<cdouble> in_place = x;
  plan->execute(in_place, scratch);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_DOUBLE_EQ(in_place[k].real(), out[k].real());
    EXPECT_DOUBLE_EQ(in_place[k].imag(), out[k].imag());
  }
}

// Pow2, Bluestein composites, and primes (worst case for chirp-z).
INSTANTIATE_TEST_SUITE_P(Sizes, PlanSizes,
                         ::testing::Values(1, 2, 3, 4, 8, 13, 16, 31, 60, 64,
                                           97, 100, 127, 128, 251, 360));

TEST(PlanPow2, MatchesLegacyFftPow2Kernel) {
  for (const std::size_t n : {2u, 16u, 256u, 1024u}) {
    const auto x = test_signal(n, 0.11);
    std::vector<cdouble> legacy = x;
    signal::fft_pow2(legacy);

    FftScratch scratch;
    std::vector<cdouble> planned(n);
    FftPlan::get(n, FftDirection::Forward)->execute(x, planned, scratch);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(planned[k].real(), legacy[k].real(), 1e-9 * static_cast<double>(n));
      EXPECT_NEAR(planned[k].imag(), legacy[k].imag(), 1e-9 * static_cast<double>(n));
    }
  }
}

TEST(RealFft, PackedEvenLengthMatchesComplexTransform) {
  // Even lengths exercise the N/2 packing trick (including 2*odd, where
  // the half-size transform itself is Bluestein); odd lengths fall back.
  for (const std::size_t n : {2u, 6u, 30u, 31u, 64u, 97u, 100u, 240u}) {
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i)
      x[i] = std::sin(0.41 * static_cast<double>(i)) +
             0.3 * std::cos(1.7 * static_cast<double>(i));
    std::vector<cdouble> wide(n);
    for (std::size_t i = 0; i < n; ++i) wide[i] = cdouble(x[i], 0.0);
    const auto expected = signal::fft(wide);
    const auto packed = signal::fft_real(x);
    ASSERT_EQ(packed.size(), n);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(packed[k].real(), expected[k].real(), 1e-9) << "n=" << n;
      EXPECT_NEAR(packed[k].imag(), expected[k].imag(), 1e-9) << "n=" << n;
    }
    // Round trip back to the real signal.
    const auto back = signal::ifft_real(packed);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], x[i], 1e-9);
  }
}

TEST(PlanCache, SharedAcrossLookupsAndClearable) {
  FftPlan::clear_cache();
  RealFftPlan::clear_cache();
  const auto a = FftPlan::get(48, FftDirection::Forward);
  const auto b = FftPlan::get(48, FftDirection::Forward);
  EXPECT_EQ(a.get(), b.get());  // one shared plan per (size, direction)
  EXPECT_NE(a.get(), FftPlan::get(48, FftDirection::Inverse).get());
  EXPECT_GE(FftPlan::cache_size(), 2u);
  FftPlan::clear_cache();
  EXPECT_EQ(FftPlan::cache_size(), 0u);
  // Plans held by callers survive a cache clear.
  FftScratch scratch;
  std::vector<cdouble> out(48);
  EXPECT_NO_THROW(a->execute(test_signal(48), out, scratch));
}

// --- filters: plan path vs one-shot, zero-allocation steady state -----------

TEST(PlannedFilters, IntoVariantsMatchOneShot) {
  for (const std::size_t n : {200u, 256u, 251u}) {
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(i) / 20.0;
      x[i] = 0.5 * std::sin(common::kTwoPi * 0.2 * t) +
             0.2 * std::sin(common::kTwoPi * 3.0 * t) + 0.1;
    }
    const auto lp = signal::fft_lowpass(x, 20.0, 0.67);
    signal::FftWorkspace ws;
    std::vector<double> lp2;
    signal::fft_lowpass_into(x, 20.0, 0.67, /*remove_dc=*/true, ws, lp2);
    ASSERT_EQ(lp.size(), lp2.size());
    for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(lp[i], lp2[i]);

    const auto bp = signal::fft_bandpass(x, 20.0, 0.1, 0.67);
    std::vector<double> bp2;
    signal::fft_bandpass_into(x, 20.0, 0.1, 0.67, ws, bp2);
    for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(bp[i], bp2[i]);
  }
}

TEST(PlannedFilters, SteadyStateLowpassPerformsZeroAllocations) {
  // Both a pow2 window and a Bluestein (non-pow2) window: the chirp and
  // kernel spectrum come from the plan, the convolution buffer from the
  // caller's workspace.
  for (const std::size_t n : {256u, 240u, 250u}) {
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i)
      x[i] = std::sin(0.05 * static_cast<double>(i));
    signal::FftWorkspace ws;
    std::vector<double> out;
    // Warm-up: builds/fetches plans, grows workspace buffers.
    signal::fft_lowpass_into(x, 20.0, 0.67, true, ws, out);
    signal::fft_lowpass_into(x, 20.0, 0.67, true, ws, out);

    const std::uint64_t before = g_allocations.load();
    signal::fft_lowpass_into(x, 20.0, 0.67, true, ws, out);
    signal::fft_lowpass_into(x, 20.0, 0.67, true, ws, out);
    const std::uint64_t after = g_allocations.load();
    EXPECT_EQ(after - before, 0u) << "n=" << n;
  }
}

TEST(PlannedFilters, SteadyStatePlanExecuteIsAllocationFree) {
  for (const std::size_t n : {1024u, 251u}) {
    const auto x = test_signal(n);
    const auto plan = FftPlan::get(n, FftDirection::Forward);
    FftScratch scratch;
    std::vector<cdouble> out(n);
    plan->execute(x, out, scratch);  // warm scratch

    const std::uint64_t before = g_allocations.load();
    plan->execute(x, out, scratch);
    plan->execute(x, out, scratch);
    EXPECT_EQ(g_allocations.load() - before, 0u) << "n=" << n;
  }
}

// --- concurrent plan lookups (TSan gate) ------------------------------------

TEST(PlanCacheConcurrency, RacingLookupsAndExecutionsAreSafe) {
  FftPlan::clear_cache();
  RealFftPlan::clear_cache();
  constexpr std::size_t kThreads = 8;
  const std::vector<std::size_t> sizes = {16, 60, 64, 97, 128, 240, 251, 256};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      FftScratch scratch;
      for (std::size_t round = 0; round < 6; ++round) {
        const std::size_t n = sizes[(t + round) % sizes.size()];
        const auto plan = FftPlan::get(
            n, round % 2 == 0 ? FftDirection::Forward : FftDirection::Inverse);
        const auto x = test_signal(n);
        std::vector<cdouble> out(n);
        plan->execute(x, out, scratch);
        // Sanity: DC bin of the forward transform is the sum.
        if (plan->direction() == FftDirection::Forward) {
          cdouble sum(0.0, 0.0);
          for (const auto& v : x) sum += v;
          if (std::abs(out[0] - sum) > 1e-6) failures.fetch_add(1);
        }
        if (n % 2 == 0) {
          std::vector<double> real_in(n, 1.0);
          std::vector<cdouble> real_out(n);
          RealFftPlan::get(n)->execute(real_in, real_out, scratch);
          if (std::abs(real_out[0].real() - static_cast<double>(n)) > 1e-9)
            failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// --- AnalysisPool contract --------------------------------------------------

TEST(AnalysisPool, RunsEveryIndexExactlyOnceAcrossThreadCounts) {
  for (const std::size_t threads : {0u, 1u, 3u}) {
    core::AnalysisPool pool(threads);
    EXPECT_EQ(pool.slots(), threads + 1);
    constexpr std::size_t kJobs = 200;
    std::vector<std::atomic<int>> hits(kJobs);
    for (auto& h : hits) h.store(0);
    std::atomic<int> bad_slot{0};
    for (int round = 0; round < 3; ++round) {
      pool.run(kJobs, [&](std::size_t i, std::size_t slot) {
        hits[i].fetch_add(1);
        if (slot >= pool.slots()) bad_slot.fetch_add(1);
      });
    }
    for (std::size_t i = 0; i < kJobs; ++i)
      EXPECT_EQ(hits[i].load(), 3) << "threads=" << threads << " i=" << i;
    EXPECT_EQ(bad_slot.load(), 0);
    pool.run(0, [&](std::size_t, std::size_t) { bad_slot.fetch_add(1); });
    EXPECT_EQ(bad_slot.load(), 0);
  }
}

TEST(AnalysisPool, PropagatesTheFirstJobException) {
  core::AnalysisPool pool(2);
  EXPECT_THROW(
      pool.run(16,
               [](std::size_t i, std::size_t) {
                 if (i == 7) throw std::runtime_error("job failed");
               }),
      std::runtime_error);
  // The pool survives a throwing batch.
  std::atomic<int> count{0};
  pool.run(8, [&](std::size_t, std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

// --- analysis scratch does not change results -------------------------------

TEST(AnalysisScratch, ScratchedAnalysisIsBitIdenticalToScratchless) {
  core::StreamDemux demux;
  for (std::uint64_t user = 1; user <= 2; ++user) {
    for (double t = 0.0; t < 30.0; t += 0.125) {
      core::TagRead r;
      r.time_s = t;
      r.epc = rfid::Epc96::from_user_tag(user, 1);
      r.antenna_id = 1;
      r.frequency_hz = 920.625e6;
      r.rssi_dbm = -55.0;
      r.phase_rad = common::wrap_phase_2pi(
          1.0 + 0.35 * std::sin(common::kTwoPi * 0.2 * t +
                                static_cast<double>(user)));
      demux.add(r);
    }
  }
  core::BreathMonitor monitor;
  core::AnalysisScratch scratch;
  for (std::uint64_t user = 1; user <= 2; ++user) {
    const auto plain = monitor.analyze_user(demux, user, 0.0, 30.0);
    const auto scratched = monitor.analyze_user(demux, user, 0.0, 30.0,
                                                &scratch);
    EXPECT_EQ(plain.health, scratched.health);
    EXPECT_DOUBLE_EQ(plain.rate.rate_bpm, scratched.rate.rate_bpm);
    ASSERT_EQ(plain.breath.samples.size(), scratched.breath.samples.size());
    for (std::size_t i = 0; i < plain.breath.samples.size(); ++i)
      EXPECT_DOUBLE_EQ(plain.breath.samples[i].value,
                       scratched.breath.samples[i].value);
  }
}

// --- dirty-window coasting --------------------------------------------------

TEST(DirtyWindow, CleanUsersSkipReanalysisAndCoast) {
  core::PipelineConfig cfg;
  cfg.window_s = 12.0;
  cfg.warmup_s = 4.0;
  cfg.update_period_s = 1.0;
  cfg.signal_loss_s = 30.0;  // keep the quiet user tracked, not Lost
  cfg.skip_clean_users = true;
  core::RealtimePipeline pipeline(cfg);

  const auto feed = [&](std::uint64_t user, double t) {
    core::TagRead r;
    r.time_s = t;
    r.epc = rfid::Epc96::from_user_tag(user, 1);
    r.antenna_id = 1;
    r.frequency_hz = 920.625e6;
    r.rssi_dbm = -55.0;
    r.phase_rad = common::wrap_phase_2pi(
        1.0 + 0.3 * std::sin(common::kTwoPi * 0.25 * t));
    pipeline.push(r);
  };

  // Both users stream to t=10; user 2 then falls silent while user 1
  // continues to t=20.
  for (double t = 0.0; t <= 10.0; t += 0.125) {
    feed(1, t);
    feed(2, t + 0.01);
  }
  const std::size_t run_at_10 = pipeline.analyses_run();
  EXPECT_GT(run_at_10, 0u);
  for (double t = 10.125; t <= 20.0; t += 0.125) feed(1, t);

  // User 2 received no reads after t=10, so each later tick coasted on
  // the cached analysis instead of re-running the Fig. 10 workflow.
  EXPECT_GT(pipeline.analyses_skipped(), 5u);
  EXPECT_NE(pipeline.latest_analysis(2), nullptr);
  // User 1 kept being re-analysed.
  EXPECT_GT(pipeline.analyses_run(), run_at_10);
}

// --- serial vs parallel determinism (chaos-soak invariant gate) -------------

core::SoakConfig engine_soak(std::size_t threads, bool skip_clean,
                             std::uint64_t seed) {
  core::SoakConfig cfg;
  cfg.n_users = 4;
  cfg.tags_per_user = 2;
  cfg.duration_s = 150.0;
  cfg.chaos = core::ChaosConfig::composite(seed);
  cfg.pipeline.analysis_threads = threads;
  cfg.pipeline.skip_clean_users = skip_clean;
  return cfg;
}

TEST(ParallelEngine, EventLogByteIdenticalToSerialEngine) {
  const auto serial = core::run_soak(engine_soak(0, false, 0xBEEF));
  const auto parallel = core::run_soak(engine_soak(3, false, 0xBEEF));
  EXPECT_TRUE(serial.ok()) << serial.violations.front();
  EXPECT_TRUE(parallel.ok()) << parallel.violations.front();
  ASSERT_GT(serial.event_log.size(), 0u);
  ASSERT_EQ(serial.event_log.size(), parallel.event_log.size());
  EXPECT_EQ(serial.event_log, parallel.event_log);
}

TEST(ParallelEngine, DeterministicWithDirtyWindowSkipEnabled) {
  const auto serial = core::run_soak(engine_soak(0, true, 0xF00D));
  const auto parallel = core::run_soak(engine_soak(4, true, 0xF00D));
  EXPECT_TRUE(serial.ok()) << serial.violations.front();
  EXPECT_TRUE(parallel.ok()) << parallel.violations.front();
  ASSERT_GT(serial.event_log.size(), 0u);
  EXPECT_EQ(serial.event_log, parallel.event_log);
}

TEST(ParallelEngine, ConfigValidationBoundsThreadCount) {
  core::PipelineConfig cfg;
  cfg.analysis_threads = 257;
  EXPECT_THROW(core::RealtimePipeline{cfg}, std::invalid_argument);
  cfg.analysis_threads = 2;
  EXPECT_NO_THROW(core::RealtimePipeline{cfg});
}

// --- observability zero-allocation gate -------------------------------------
// Instrument *updates* (Counter::add, Gauge::set, Histogram::observe,
// TraceRing::record) must never allocate; only registration may. The
// direct test asserts the primitive contract; the pipeline test drives
// a bound and an unbound pipeline through the identical feed and
// requires the bound one to allocate not a single call more —
// instrumentation rides the hot path for free after bind.

TEST(ObsZeroAlloc, InstrumentUpdatesAreAllocationFree) {
  obs::Observability hub(256);
  obs::Counter& c = hub.metrics().counter("gate_total");
  obs::Gauge& g = hub.metrics().gauge("gate_depth");
  obs::Histogram& h =
      hub.metrics().histogram("gate_seconds", obs::default_latency_bounds());
  const std::uint16_t stage = hub.trace().register_stage("gate");

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 10000; ++i) {
    c.add();
    g.set(static_cast<double>(i));
    h.observe(1e-4 * static_cast<double>(i));
    hub.trace().record(stage, obs::SpanKind::Instant,
                       static_cast<double>(i), 7);
    (void)hub.now();
  }
  EXPECT_EQ(g_allocations.load() - before, 0u);
}

TEST(ObsZeroAlloc, InstrumentedPipelineAllocatesNoMoreThanBare) {
  const auto drive = [](core::RealtimePipeline& pipeline, double from,
                        double to) {
    for (double t = from; t < to; t += 0.125) {
      for (std::uint64_t user = 1; user <= 2; ++user) {
        core::TagRead r;
        r.time_s = t + 0.01 * static_cast<double>(user);
        r.epc = rfid::Epc96::from_user_tag(user, 1);
        r.antenna_id = 1;
        r.frequency_hz = 920.625e6;
        r.rssi_dbm = -55.0;
        r.phase_rad = common::wrap_phase_2pi(
            1.0 + 0.3 * std::sin(common::kTwoPi * 0.2 * t +
                                 static_cast<double>(user)));
        pipeline.push(r);
      }
    }
  };

  core::PipelineConfig cfg;
  cfg.window_s = 12.0;
  cfg.warmup_s = 4.0;
  cfg.update_period_s = 1.0;

  obs::Observability hub(1 << 12);
  hub.use_deterministic_clock();
  core::RealtimePipeline bare(cfg);
  core::RealtimePipeline bound(cfg);
  bound.bind_observability(hub);

  // Warm both to steady state (windows full, scratch arenas sized).
  drive(bare, 0.0, 30.0);
  drive(bound, 0.0, 30.0);

  // Identical feeds from here on: any allocation difference is the
  // instrumentation's fault.
  const std::uint64_t before_bare = g_allocations.load();
  drive(bare, 30.0, 45.0);
  const std::uint64_t bare_allocs = g_allocations.load() - before_bare;

  const std::uint64_t before_bound = g_allocations.load();
  drive(bound, 30.0, 45.0);
  const std::uint64_t bound_allocs = g_allocations.load() - before_bound;

  EXPECT_EQ(bound_allocs, bare_allocs);
}

}  // namespace
}  // namespace tagbreathe
