// Unified observability layer (src/obs): registry find-or-create
// semantics, the histogram bucket contract, trace-ring bounds, exporter
// byte formats, merge-law property tests for the counter structs the
// registry mirrors, and the golden-snapshot determinism gate (a seeded
// chaos soak exports byte-identical Prometheus/JSON twice).
//
// Thread-hammering tests carry the `concurrency` label with the rest of
// the file so the TSan CI job covers the lock-free instrument updates.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/chaos.hpp"
#include "core/metrics.hpp"
#include "core/recovery.hpp"
#include "fleet/fleet_soak.hpp"
#include "obs/export.hpp"
#include "obs/observability.hpp"
#include "signal/simd/dispatch.hpp"

namespace tagbreathe {
namespace {

using obs::Observability;
using obs::TraceRing;

// --- registry --------------------------------------------------------------

TEST(Registry, FindOrCreateReturnsStableInstance) {
  obs::MetricsRegistry m;
  obs::Counter& a = m.counter("reads_total");
  a.add(3);
  obs::Counter& b = m.counter("reads_total");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(Registry, KindClashThrows) {
  obs::MetricsRegistry m;
  m.counter("x_total");
  EXPECT_THROW(m.gauge("x_total"), std::invalid_argument);
  EXPECT_THROW(m.histogram("x_total", obs::default_latency_bounds()),
               std::invalid_argument);
}

TEST(Registry, MalformedNamesThrow) {
  obs::MetricsRegistry m;
  EXPECT_THROW(m.counter(""), std::invalid_argument);
  EXPECT_THROW(m.counter("9leading_digit"), std::invalid_argument);
  EXPECT_THROW(m.counter("has space"), std::invalid_argument);
  EXPECT_THROW(m.counter("has-dash"), std::invalid_argument);
  EXPECT_NO_THROW(m.counter("ok_name:subsystem_total"));
}

TEST(Registry, LabelPairsAreDistinctSeries) {
  obs::MetricsRegistry m;
  obs::Counter& a = m.counter("q_total", "reason", "alpha");
  obs::Counter& b = m.counter("q_total", "reason", "beta");
  EXPECT_NE(&a, &b);
  a.add(1);
  b.add(2);
  EXPECT_EQ(m.counter("q_total", "reason", "alpha").value(), 1u);
  // Key without value (and vice versa) is rejected.
  EXPECT_THROW(m.counter("q_total", "reason", ""), std::invalid_argument);
}

TEST(Registry, HistogramReRegistrationChecksBounds) {
  obs::MetricsRegistry m;
  const double bounds[] = {1.0, 2.0};
  obs::Histogram& h = m.histogram("lat_seconds", bounds);
  EXPECT_EQ(&m.histogram("lat_seconds", bounds), &h);
  const double other[] = {1.0, 3.0};
  EXPECT_THROW(m.histogram("lat_seconds", other), std::invalid_argument);
}

TEST(Registry, SnapshotSortedByNameThenLabel) {
  obs::MetricsRegistry m;
  m.counter("zz_total").add(1);
  m.counter("aa_total").add(2);
  m.counter("mm_total", "kind", "b").add(3);
  m.counter("mm_total", "kind", "a").add(4);
  const obs::MetricsSnapshot snap = m.snapshot();
  ASSERT_EQ(snap.counters.size(), 4u);
  EXPECT_EQ(snap.counters[0].name, "aa_total");
  EXPECT_EQ(snap.counters[1].name, "mm_total");
  EXPECT_EQ(snap.counters[1].label_value, "a");
  EXPECT_EQ(snap.counters[2].label_value, "b");
  EXPECT_EQ(snap.counters[3].name, "zz_total");
}

TEST(Registry, GaugeSetAndAdd) {
  obs::MetricsRegistry m;
  obs::Gauge& g = m.gauge("depth");
  g.set(4.0);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

// --- histogram bucket contract ---------------------------------------------

TEST(Histogram, BoundaryValuesLandInLeBucket) {
  const double bounds[] = {1.0, 2.0, 4.0};
  obs::Histogram h{std::span<const double>(bounds)};
  h.observe(1.0);   // le="1" exactly on the bound
  h.observe(1.5);   // le="2"
  h.observe(2.0);   // le="2" exactly on the bound
  h.observe(4.0);   // le="4"
  h.observe(0.0);   // le="1"
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 0u);  // overflow untouched
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 8.5);
}

TEST(Histogram, OverflowBucketTakesOutOfRange) {
  const double bounds[] = {1.0};
  obs::Histogram h{std::span<const double>(bounds)};
  h.observe(1.0000001);
  h.observe(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.bucket_count(0), 0u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.count(), 2u);
}

TEST(Histogram, NanCountedInOverflowExcludedFromSum) {
  const double bounds[] = {1.0};
  obs::Histogram h{std::span<const double>(bounds)};
  h.observe(0.5);
  h.observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5);  // NaN never poisons the sum
}

TEST(Histogram, InvalidBoundsThrow) {
  const std::vector<double> empty;
  EXPECT_THROW(obs::Histogram{std::span<const double>(empty)},
               std::invalid_argument);
  const double descending[] = {2.0, 1.0};
  EXPECT_THROW(obs::Histogram{std::span<const double>(descending)},
               std::invalid_argument);
  const double duplicate[] = {1.0, 1.0};
  EXPECT_THROW(obs::Histogram{std::span<const double>(duplicate)},
               std::invalid_argument);
  const double infinite[] = {1.0, std::numeric_limits<double>::infinity()};
  EXPECT_THROW(obs::Histogram{std::span<const double>(infinite)},
               std::invalid_argument);
}

// TSan coverage of the lock-free update paths: concurrent adds,
// sets and observes against one registry, plus trace recording.
TEST(Concurrency, InstrumentsAreThreadSafe) {
  Observability hub(1024);
  obs::Counter& c = hub.metrics().counter("hammer_total");
  obs::Gauge& g = hub.metrics().gauge("hammer_depth");
  const double bounds[] = {0.25, 0.5, 0.75};
  obs::Histogram& h = hub.metrics().histogram("hammer_seconds", bounds);
  const std::uint16_t stage = hub.trace().register_stage("hammer");

  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      common::Rng rng(0x0B5 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kIters; ++i) {
        c.add();
        g.set(static_cast<double>(i));
        h.observe(rng.uniform());
        if (i % 64 == 0)
          hub.trace().record(stage, obs::SpanKind::Instant,
                             static_cast<double>(i), static_cast<unsigned>(t));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < h.buckets(); ++i) bucket_total += h.bucket_count(i);
  EXPECT_EQ(bucket_total, h.count());
  const obs::TraceSnapshot trace = hub.trace().snapshot();
  // i % 64 == 0 fires at i = 0 too: ceil(kIters / 64) records per thread.
  EXPECT_EQ(trace.events.size() + trace.dropped,
            static_cast<std::uint64_t>(kThreads) * ((kIters + 63) / 64));
}

// --- trace ring ------------------------------------------------------------

TEST(Trace, ZeroCapacityThrows) {
  EXPECT_THROW(TraceRing ring(0), std::invalid_argument);
}

TEST(Trace, RingOverwritesOldestAndCountsDrops) {
  TraceRing ring(4);
  const std::uint16_t stage = ring.register_stage("s");
  for (std::uint64_t i = 0; i < 6; ++i)
    ring.record(stage, obs::SpanKind::Instant, static_cast<double>(i), i);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 2u);
  const obs::TraceSnapshot snap = ring.snapshot();
  ASSERT_EQ(snap.events.size(), 4u);
  // Oldest-first: events 0 and 1 were overwritten.
  EXPECT_EQ(snap.events.front().value, 2u);
  EXPECT_EQ(snap.events.back().value, 5u);
  EXPECT_EQ(snap.capacity, 4u);
}

TEST(Trace, RegisterStageDedupes) {
  TraceRing ring(8);
  const std::uint16_t a = ring.register_stage("alpha");
  const std::uint16_t b = ring.register_stage("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(ring.register_stage("alpha"), a);
  const obs::TraceSnapshot snap = ring.snapshot();
  ASSERT_EQ(snap.stages.size(), 2u);
  EXPECT_EQ(snap.stages[a], "alpha");
  EXPECT_EQ(snap.stages[b], "beta");
}

TEST(Trace, EnterExitKinds) {
  TraceRing ring(8);
  const std::uint16_t s = ring.register_stage("span");
  ring.enter(s, 1.0, 7);
  ring.exit(s, 2.0, 7);
  const obs::TraceSnapshot snap = ring.snapshot();
  ASSERT_EQ(snap.events.size(), 2u);
  EXPECT_EQ(snap.events[0].kind, obs::SpanKind::Enter);
  EXPECT_EQ(snap.events[1].kind, obs::SpanKind::Exit);
  EXPECT_DOUBLE_EQ(snap.events[1].time_s, 2.0);
}

// --- hub clock -------------------------------------------------------------

TEST(Hub, DeterministicClockAdvancesPerCall) {
  Observability hub;
  hub.use_deterministic_clock(0.5);
  EXPECT_DOUBLE_EQ(hub.now(), 0.0);
  EXPECT_DOUBLE_EQ(hub.now(), 0.5);
  EXPECT_DOUBLE_EQ(hub.now(), 1.0);
}

TEST(Hub, EmptyClockRejected) {
  Observability hub;
  EXPECT_THROW(hub.set_clock(nullptr), std::invalid_argument);
}

TEST(Hub, DefaultClockIsMonotonic) {
  Observability hub(8);
  const double a = hub.now();
  const double b = hub.now();
  EXPECT_GE(b, a);
}

TEST(Hub, GlobalHubIsAStableSingleton) {
  Observability& g = Observability::global();
  EXPECT_EQ(&g, &Observability::global());
  g.metrics().counter("global_smoke_total").add();
  EXPECT_GE(g.metrics().size(), 1u);
}

// --- exporters -------------------------------------------------------------

TEST(Exporters, PrometheusTextFormat) {
  Observability hub(8);
  hub.metrics().counter("a_total").add(3);
  hub.metrics().gauge("g").set(1.5);
  const double bounds[] = {1.0, 2.0};
  obs::Histogram& h = hub.metrics().histogram("h", bounds);
  h.observe(0.5);
  h.observe(3.0);
  const std::string text = obs::to_prometheus(hub.snapshot());
  EXPECT_EQ(text,
            "# TYPE a_total counter\n"
            "a_total 3\n"
            "# TYPE g gauge\n"
            "g 1.5\n"
            "# TYPE h histogram\n"
            "h_bucket{le=\"1\"} 1\n"
            "h_bucket{le=\"2\"} 1\n"
            "h_bucket{le=\"+Inf\"} 2\n"
            "h_sum 3.5\n"
            "h_count 2\n"
            "# TYPE obs_trace_events gauge\n"
            "obs_trace_events 0\n"
            "# TYPE obs_trace_dropped_total counter\n"
            "obs_trace_dropped_total 0\n");
}

TEST(Exporters, PrometheusOneTypeLinePerLabelledFamily) {
  Observability hub(8);
  hub.metrics().counter("q_total", "reason", "a").add(1);
  hub.metrics().counter("q_total", "reason", "b").add(2);
  const std::string text = obs::to_prometheus(hub.snapshot());
  EXPECT_NE(text.find("# TYPE q_total counter\n"
                      "q_total{reason=\"a\"} 1\n"
                      "q_total{reason=\"b\"} 2\n"),
            std::string::npos);
  // Exactly one TYPE line for the family.
  EXPECT_EQ(text.find("# TYPE q_total"), text.rfind("# TYPE q_total"));
}

TEST(Exporters, PrometheusMixedLabelKeysSortByteStably) {
  // One family scattered across two label keys (the fleet publishes
  // per-reader and per-shard series): the registry's (name, key, value)
  // order fully determines the exposition, byte for byte.
  Observability hub(8);
  hub.metrics().counter("fleet_reads_total", "shard", "s01").add(5);
  hub.metrics().counter("fleet_reads_total", "reader", "r002").add(7);
  hub.metrics().counter("fleet_reads_total", "reader", "r000").add(1);
  const std::string text = obs::to_prometheus(hub.snapshot());
  EXPECT_EQ(text,
            "# TYPE fleet_reads_total counter\n"
            "fleet_reads_total{reader=\"r000\"} 1\n"
            "fleet_reads_total{reader=\"r002\"} 7\n"
            "fleet_reads_total{shard=\"s01\"} 5\n"
            "# TYPE obs_trace_events gauge\n"
            "obs_trace_events 0\n"
            "# TYPE obs_trace_dropped_total counter\n"
            "obs_trace_dropped_total 0\n");
  // A second scrape of a fresh snapshot reproduces the bytes exactly.
  EXPECT_EQ(text, obs::to_prometheus(hub.snapshot()));
}

TEST(Exporters, PrometheusLabelledHistogramBuckets) {
  Observability hub(8);
  const double bounds[] = {1.0};
  hub.metrics().histogram("stage_seconds", bounds, "stage", "fuse")
      .observe(0.25);
  const std::string text = obs::to_prometheus(hub.snapshot());
  EXPECT_NE(text.find("stage_seconds_bucket{stage=\"fuse\",le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("stage_seconds_sum{stage=\"fuse\"} 0.25"),
            std::string::npos);
  EXPECT_NE(text.find("stage_seconds_count{stage=\"fuse\"} 1"),
            std::string::npos);
}

TEST(Exporters, PrometheusEscapesHostileLabelValues) {
  // Label VALUES are caller data and may carry the three characters the
  // exposition format reserves: backslash, double quote and newline. An
  // unescaped one silently corrupts the whole scrape, so this is a
  // golden byte test.
  Observability hub(8);
  hub.metrics().counter("hostile_total", "reason", "a\\b\"c\nd").add(1);
  hub.metrics().gauge("hostile_gauge", "path", "C:\\tmp\\x").set(2.0);
  const double bounds[] = {1.0};
  hub.metrics()
      .histogram("hostile_seconds", bounds, "op", "say \"hi\"\n")
      .observe(0.5);
  const std::string text = obs::to_prometheus(hub.snapshot());
  EXPECT_NE(text.find("hostile_total{reason=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("hostile_gauge{path=\"C:\\\\tmp\\\\x\"} 2\n"),
            std::string::npos)
      << text;
  // Histogram series escape the label value on every synthesized line,
  // and the internally generated le value stays untouched.
  EXPECT_NE(
      text.find("hostile_seconds_bucket{op=\"say \\\"hi\\\"\\n\",le=\"1\"} 1"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("hostile_seconds_count{op=\"say \\\"hi\\\"\\n\"} 1"),
            std::string::npos)
      << text;
  // A raw (unescaped) newline inside a label value would orphan the
  // value's tail onto its own exposition line.
  EXPECT_EQ(text.find("\nd\""), std::string::npos) << text;
  // Deterministic: a second snapshot exports the same bytes.
  EXPECT_EQ(text, obs::to_prometheus(hub.snapshot()));
}

TEST(Exporters, JsonFormat) {
  Observability hub(8);
  hub.metrics().counter("a_total").add(3);
  const std::string json = obs::to_json(hub.snapshot());
  EXPECT_EQ(json,
            "{\n"
            "  \"counters\": [\n"
            "    {\"name\": \"a_total\", \"value\": 3}\n"
            "  ],\n"
            "  \"gauges\": [\n"
            "  ],\n"
            "  \"histograms\": [\n"
            "  ],\n"
            "  \"trace\": {\"capacity\": 8, \"dropped\": 0, \"events\": [\n"
            "  ]}\n"
            "}\n");
}

TEST(Exporters, JsonCarriesTraceEventsAndHistograms) {
  Observability hub(8);
  const double bounds[] = {1.0, 2.0};
  hub.metrics().histogram("h", bounds, "stage", "x").observe(1.5);
  const std::uint16_t s = hub.trace().register_stage("pipeline.update");
  hub.trace().enter(s, 12.25, 9);
  const std::string json = obs::to_json(hub.snapshot());
  EXPECT_NE(json.find("{\"name\": \"h\", \"stage\": \"x\", "
                      "\"bounds\": [1, 2], \"counts\": [0, 1, 0], "
                      "\"count\": 1, \"sum\": 1.5}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"stage\": \"pipeline.update\", \"kind\": \"enter\", "
                      "\"t\": 12.25, \"value\": 9}"),
            std::string::npos);
}

// --- merge-law property tests ----------------------------------------------
//
// The registry mirrors these structs, so their merge must be a proper
// commutative monoid or mirrored totals drift depending on merge order.
// Latencies are generated as multiples of 1/1024 (dyadic rationals) so
// double addition is exact and the laws can be asserted bit-for-bit.

core::LatencyStats random_latency_stats(std::uint64_t seed) {
  common::Rng rng(seed);
  core::LatencyStats s;
  const int n = rng.uniform_int(0, 64);
  for (int i = 0; i < n; ++i)
    s.record(static_cast<double>(rng.uniform_int(0, 4096)) / 1024.0);
  return s;
}

bool equal(const core::LatencyStats& a, const core::LatencyStats& b) {
  return a.samples == b.samples && a.total_s == b.total_s && a.max_s == b.max_s;
}

core::DurabilityCounters random_durability_counters(std::uint64_t seed) {
  common::Rng rng(seed);
  core::DurabilityCounters c;
  c.journal_records_appended = rng.uniform_int(0, 1000);
  c.journal_commits = rng.uniform_int(0, 1000);
  c.journal_bytes_written = rng.uniform_int(0, 1 << 20);
  c.journal_segments_created = rng.uniform_int(0, 100);
  c.journal_segments_pruned = rng.uniform_int(0, 100);
  c.replay_records = rng.uniform_int(0, 1000);
  c.replay_quarantined = rng.uniform_int(0, 1000);
  c.journal_records_corrupt = rng.uniform_int(0, 100);
  c.journal_truncated_tails = rng.uniform_int(0, 100);
  c.journal_segments_scanned = rng.uniform_int(0, 100);
  c.journal_segments_rejected = rng.uniform_int(0, 100);
  c.snapshots_written = rng.uniform_int(0, 100);
  c.snapshot_bytes_written = rng.uniform_int(0, 1 << 20);
  c.snapshots_pruned = rng.uniform_int(0, 100);
  c.snapshots_loaded = rng.uniform_int(0, 100);
  c.snapshots_rejected = rng.uniform_int(0, 100);
  return c;
}

bool equal(const core::DurabilityCounters& a,
           const core::DurabilityCounters& b) {
  return a.journal_records_appended == b.journal_records_appended &&
         a.journal_commits == b.journal_commits &&
         a.journal_bytes_written == b.journal_bytes_written &&
         a.journal_segments_created == b.journal_segments_created &&
         a.journal_segments_pruned == b.journal_segments_pruned &&
         a.replay_records == b.replay_records &&
         a.replay_quarantined == b.replay_quarantined &&
         a.journal_records_corrupt == b.journal_records_corrupt &&
         a.journal_truncated_tails == b.journal_truncated_tails &&
         a.journal_segments_scanned == b.journal_segments_scanned &&
         a.journal_segments_rejected == b.journal_segments_rejected &&
         a.snapshots_written == b.snapshots_written &&
         a.snapshot_bytes_written == b.snapshot_bytes_written &&
         a.snapshots_pruned == b.snapshots_pruned &&
         a.snapshots_loaded == b.snapshots_loaded &&
         a.snapshots_rejected == b.snapshots_rejected;
}

TEST(MergeLaws, LatencyStatsIdentity) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const core::LatencyStats a = random_latency_stats(seed);
    core::LatencyStats left = a;
    left.merge(core::LatencyStats{});  // right identity
    EXPECT_TRUE(equal(left, a)) << "seed " << seed;
    core::LatencyStats right;  // left identity
    right.merge(a);
    EXPECT_TRUE(equal(right, a)) << "seed " << seed;
  }
}

TEST(MergeLaws, LatencyStatsCommutative) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const core::LatencyStats a = random_latency_stats(seed);
    const core::LatencyStats b = random_latency_stats(seed + 1000);
    core::LatencyStats ab = a;
    ab.merge(b);
    core::LatencyStats ba = b;
    ba.merge(a);
    EXPECT_TRUE(equal(ab, ba)) << "seed " << seed;
  }
}

TEST(MergeLaws, LatencyStatsAssociative) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const core::LatencyStats a = random_latency_stats(seed);
    const core::LatencyStats b = random_latency_stats(seed + 1000);
    const core::LatencyStats c = random_latency_stats(seed + 2000);
    core::LatencyStats left = a;
    left.merge(b);
    left.merge(c);
    core::LatencyStats bc = b;
    bc.merge(c);
    core::LatencyStats right = a;
    right.merge(bc);
    EXPECT_TRUE(equal(left, right)) << "seed " << seed;
  }
}

TEST(MergeLaws, DurabilityCountersIdentity) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const core::DurabilityCounters a = random_durability_counters(seed);
    core::DurabilityCounters left = a;
    left.merge(core::DurabilityCounters{});
    EXPECT_TRUE(equal(left, a)) << "seed " << seed;
    core::DurabilityCounters right;
    right.merge(a);
    EXPECT_TRUE(equal(right, a)) << "seed " << seed;
  }
}

TEST(MergeLaws, DurabilityCountersCommutative) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const core::DurabilityCounters a = random_durability_counters(seed);
    const core::DurabilityCounters b = random_durability_counters(seed + 1000);
    core::DurabilityCounters ab = a;
    ab.merge(b);
    core::DurabilityCounters ba = b;
    ba.merge(a);
    EXPECT_TRUE(equal(ab, ba)) << "seed " << seed;
  }
}

TEST(MergeLaws, DurabilityCountersAssociative) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const core::DurabilityCounters a = random_durability_counters(seed);
    const core::DurabilityCounters b = random_durability_counters(seed + 1000);
    const core::DurabilityCounters c = random_durability_counters(seed + 2000);
    core::DurabilityCounters left = a;
    left.merge(b);
    left.merge(c);
    core::DurabilityCounters bc = b;
    bc.merge(c);
    core::DurabilityCounters right = a;
    right.merge(bc);
    EXPECT_TRUE(equal(left, right)) << "seed " << seed;
  }
}

// --- golden-snapshot determinism -------------------------------------------

std::uint64_t counter_value(const obs::MetricsSnapshot& snap,
                            const std::string& name,
                            const std::string& label_value = {}) {
  for (const obs::CounterSample& c : snap.counters) {
    if (c.name == name && c.label_value == label_value) return c.value;
  }
  ADD_FAILURE() << "counter not found: " << name << " " << label_value;
  return 0;
}

// Two runs of one seeded chaos scenario, each with a fresh hub and a
// deterministic latency clock, must export byte-identical Prometheus
// and JSON snapshots: the whole instrumentation path — counters,
// histograms, trace events — is a pure function of the data.
TEST(GoldenSnapshot, ChaosSoakExportsAreByteStable) {
  const auto run = [] {
    auto hub = std::make_unique<Observability>(1 << 14);
    hub->use_deterministic_clock();
    core::SoakConfig cfg;
    cfg.n_users = 2;
    cfg.tags_per_user = 2;
    cfg.duration_s = 45.0;
    cfg.chaos = core::ChaosConfig::composite(0x60D5);
    cfg.observability = hub.get();
    const core::SoakReport report = core::run_soak(cfg);
    EXPECT_TRUE(report.ok());
    const obs::ObservabilitySnapshot snap = hub->snapshot();
    return std::make_pair(obs::to_prometheus(snap), obs::to_json(snap));
  };
  const auto [prom1, json1] = run();
  const auto [prom2, json2] = run();
  EXPECT_EQ(prom1, prom2);
  EXPECT_EQ(json1, json2);
}

// The soak binding wires the full path: every layer's instruments must
// show up in the export with values consistent with the soak report.
TEST(GoldenSnapshot, SoakInstrumentsMirrorReportCounters) {
  Observability hub(1 << 14);
  hub.use_deterministic_clock();
  core::SoakConfig cfg;
  cfg.n_users = 2;
  cfg.duration_s = 45.0;
  cfg.chaos = core::ChaosConfig::composite(0xBEEF);
  cfg.observability = &hub;
  const core::SoakReport report = core::run_soak(cfg);
  ASSERT_TRUE(report.ok());

  const obs::ObservabilitySnapshot snap = hub.snapshot();
  EXPECT_EQ(counter_value(snap.metrics, "ingest_queue_enqueued_total"),
            report.queue.enqueued);
  EXPECT_EQ(counter_value(snap.metrics, "ingest_queue_drained_total"),
            report.queue.drained);
  EXPECT_EQ(counter_value(snap.metrics, "ingest_admitted_total"),
            report.validation.admitted);
  std::uint64_t quarantined = 0;
  for (std::size_t i = 0; i < core::kQuarantineReasonCount; ++i) {
    quarantined += counter_value(
        snap.metrics, "ingest_quarantined_total",
        core::quarantine_reason_name(static_cast<core::QuarantineReason>(i)));
  }
  EXPECT_EQ(quarantined, report.validation.quarantined_total);
  EXPECT_GT(counter_value(snap.metrics, "pipeline_updates_total"), 0u);
  EXPECT_GT(counter_value(snap.metrics, "pipeline_events_total",
                          "rate-update"),
            0u);
  EXPECT_EQ(counter_value(snap.metrics, "pipeline_events_total",
                          "signal-lost"),
            report.signal_lost_events);

  // Stage histograms and trace spans were exercised.
  const std::string text = obs::to_prometheus(snap);
  EXPECT_NE(text.find("analysis_stage_seconds_bucket{stage=\"fuse\""),
            std::string::npos);
  EXPECT_NE(text.find("pipeline_update_seconds_count"), std::string::npos);
  // The DSP dispatch level rides along in both exports and mirrors the
  // level the process actually resolved.
  EXPECT_NE(text.find("dsp_simd_level"), std::string::npos);
  const std::string json = obs::to_json(snap);
  EXPECT_NE(json.find("\"stage\": \"pipeline.update\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\": \"monitor.analyze\""), std::string::npos);
  EXPECT_NE(json.find("dsp_simd_level"), std::string::npos);
  bool gauge_found = false;
  for (const obs::GaugeSample& g : snap.metrics.gauges) {
    if (g.name != "dsp_simd_level") continue;
    gauge_found = true;
    EXPECT_EQ(g.value,
              static_cast<double>(signal::simd::active_level_value()));
  }
  EXPECT_TRUE(gauge_found);
}

// The DurableMonitor bind adds the journal/snapshot counters on top of
// the pipeline and front-end series: after a durable soak the exported
// durability_* totals must equal the report's merged DurabilityCounters
// (run_durable_soak flushes before reading them, so the mirror is exact).
TEST(GoldenSnapshot, DurableSoakMirrorsDurabilityCounters) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("tagbreathe_obs_durable_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  Observability hub(1 << 14);
  hub.use_deterministic_clock();
  core::SoakConfig cfg;
  cfg.n_users = 2;
  cfg.tags_per_user = 1;
  cfg.duration_s = 45.0;
  cfg.observability = &hub;
  core::DurabilityConfig durability;
  durability.directory = dir.string();
  durability.snapshot_period_s = 15.0;
  durability.snapshot.fsync = false;
  const core::SoakReport report = core::run_durable_soak(cfg, durability);
  std::error_code ec;
  fs::remove_all(dir, ec);
  ASSERT_TRUE(report.ok())
      << (report.violations.empty() ? "" : report.violations.front());
  ASSERT_GT(report.durability.journal_records_appended, 0u);
  ASSERT_GE(report.durability.snapshots_written, 2u);

  const obs::MetricsSnapshot snap = hub.metrics().snapshot();
  EXPECT_EQ(counter_value(snap, "durability_journal_records_appended_total"),
            report.durability.journal_records_appended);
  EXPECT_EQ(counter_value(snap, "durability_journal_commits_total"),
            report.durability.journal_commits);
  EXPECT_EQ(counter_value(snap, "durability_journal_bytes_written_total"),
            report.durability.journal_bytes_written);
  EXPECT_EQ(counter_value(snap, "durability_journal_segments_created_total"),
            report.durability.journal_segments_created);
  EXPECT_EQ(counter_value(snap, "durability_journal_segments_pruned_total"),
            report.durability.journal_segments_pruned);
  EXPECT_EQ(counter_value(snap, "durability_snapshots_written_total"),
            report.durability.snapshots_written);
  EXPECT_EQ(counter_value(snap, "durability_snapshot_bytes_written_total"),
            report.durability.snapshot_bytes_written);
  EXPECT_EQ(counter_value(snap, "durability_snapshots_pruned_total"),
            report.durability.snapshots_pruned);
  // Fresh directory: nothing to replay, and the export says so too.
  EXPECT_EQ(counter_value(snap, "durability_replay_records_total"), 0u);
  EXPECT_EQ(counter_value(snap, "durability_snapshots_loaded_total"), 0u);
}

// Every fleet shard gets its own update-latency histogram, timed with
// the hub clock — so with the deterministic clock the whole labelled
// family (buckets included) must export byte-identically across runs.
TEST(GoldenSnapshot, FleetShardUpdateLatencyIsLabelledAndByteStable) {
  const auto run = [] {
    auto hub = std::make_unique<Observability>(1 << 14);
    hub->use_deterministic_clock();
    fleet::FleetSoakConfig cfg;
    cfg.n_readers = 4;
    cfg.n_users = 8;
    cfg.duration_s = 20.0;
    cfg.fleet.n_shards = 3;
    cfg.fleet.ingest.max_users = 0;
    cfg.record_event_log = false;
    cfg.observability = hub.get();
    const fleet::FleetSoakReport report = fleet::run_fleet_soak(cfg);
    EXPECT_TRUE(report.ok())
        << (report.violations.empty() ? "" : report.violations.front());
    const obs::ObservabilitySnapshot snap = hub->snapshot();
    return std::make_pair(obs::to_prometheus(snap), obs::to_json(snap));
  };
  const auto [prom1, json1] = run();
  const auto [prom2, json2] = run();
  EXPECT_EQ(prom1, prom2);
  EXPECT_EQ(json1, json2);

  // One labelled series per shard, each with buckets, a count and a sum.
  for (const char* shard : {"s00", "s01", "s02"}) {
    const std::string sel = std::string("{shard=\"") + shard + "\"";
    EXPECT_NE(
        prom1.find("fleet_shard_update_latency_seconds_bucket" + sel),
        std::string::npos)
        << shard;
    EXPECT_NE(prom1.find("fleet_shard_update_latency_seconds_count" + sel),
              std::string::npos)
        << shard;
    EXPECT_NE(prom1.find("fleet_shard_update_latency_seconds_sum" + sel),
              std::string::npos)
        << shard;
  }
  // No shard beyond the configured three.
  EXPECT_EQ(prom1.find("fleet_shard_update_latency_seconds_count{shard=\"s03\""),
            std::string::npos);
}

}  // namespace
}  // namespace tagbreathe
