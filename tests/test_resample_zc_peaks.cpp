// Unit tests: interpolation/resampling, zero-crossing detection, peak
// detection.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "signal/interpolate.hpp"
#include "signal/peaks.hpp"
#include "signal/zero_crossing.hpp"

namespace tagbreathe::signal {
namespace {

using common::kTwoPi;

// --- interpolation ----------------------------------------------------------

TEST(Interpolate, LinearBetweenPoints) {
  std::vector<TimedSample> s{{0.0, 0.0}, {1.0, 10.0}, {3.0, 30.0}};
  EXPECT_DOUBLE_EQ(interp_linear(s, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interp_linear(s, 2.0), 20.0);
  EXPECT_DOUBLE_EQ(interp_linear(s, -1.0), 0.0);   // clamp left
  EXPECT_DOUBLE_EQ(interp_linear(s, 99.0), 30.0);  // clamp right
  EXPECT_THROW(interp_linear({}, 0.0), std::invalid_argument);
}

TEST(Resample, UniformGridCoversSpan) {
  std::vector<TimedSample> s;
  for (int i = 0; i <= 10; ++i)
    s.push_back({0.3 * i, static_cast<double>(i)});
  const auto u = resample_uniform(s, 10.0);
  ASSERT_FALSE(u.empty());
  EXPECT_DOUBLE_EQ(u.front().time_s, 0.0);
  EXPECT_NEAR(u.back().time_s, 3.0, 0.101);
  for (std::size_t i = 1; i < u.size(); ++i)
    EXPECT_NEAR(u[i].time_s - u[i - 1].time_s, 0.1, 1e-12);
}

TEST(Resample, ReconstructsLinearSignalExactly) {
  std::vector<TimedSample> s;
  common::Rng rng(1);
  double t = 0.0;
  while (t < 10.0) {
    s.push_back({t, 2.0 * t + 1.0});
    t += rng.uniform(0.01, 0.2);
  }
  const auto u = resample_uniform(s, 20.0);
  for (const auto& p : u) EXPECT_NEAR(p.value, 2.0 * p.time_s + 1.0, 1e-9);
}

TEST(Resample, HoldsAcrossLongGaps) {
  std::vector<TimedSample> s{{0.0, 0.0}, {1.0, 1.0}, {5.0, 100.0}};
  // With gap handling: values in (1, 5) hold at 1.0 instead of ramping.
  const auto held = resample_uniform(s, 10.0, /*max_gap_s=*/2.0);
  for (const auto& p : held) {
    if (p.time_s > 1.05 && p.time_s < 4.95) {
      EXPECT_DOUBLE_EQ(p.value, 1.0);
    }
  }
  // Without gap handling the midpoint ramps.
  const auto ramp = resample_uniform(s, 10.0, /*max_gap_s=*/0.0);
  bool saw_ramp = false;
  for (const auto& p : ramp)
    if (p.time_s > 2.9 && p.time_s < 3.1 && p.value > 20.0) saw_ramp = true;
  EXPECT_TRUE(saw_ramp);
}

TEST(Resample, ErrorsAndEmpty) {
  std::vector<TimedSample> s{{0.0, 1.0}};
  EXPECT_THROW(resample_uniform(s, 0.0), std::invalid_argument);
  EXPECT_TRUE(resample_uniform({}, 10.0).empty());
}

TEST(SeriesHelpers, SplitAndRateAndSorted) {
  std::vector<TimedSample> s{{0.0, 1.0}, {0.5, 2.0}, {1.0, 3.0}};
  std::vector<double> t, v;
  split_series(s, t, v);
  EXPECT_EQ(t, (std::vector<double>{0.0, 0.5, 1.0}));
  EXPECT_EQ(v, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_DOUBLE_EQ(mean_sample_rate(s), 2.0);
  EXPECT_TRUE(is_time_sorted(s));
  std::swap(s[0], s[2]);
  EXPECT_FALSE(is_time_sorted(s));
  EXPECT_EQ(mean_sample_rate(std::vector<TimedSample>{}), 0.0);
}

// --- zero crossings ------------------------------------------------------------

TEST(ZeroCrossing, CountsSineCrossings) {
  // 4 full cycles starting at zero: interior crossings at samples
  // 50, 100, ..., 350 -> 7 (the initial zero and the wrap at 400 are not
  // crossings of the sampled series).
  std::vector<double> x(400);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(kTwoPi * 4.0 * static_cast<double>(i) / 400.0);
  const auto crossings = detect_zero_crossings(x, 100.0);
  EXPECT_EQ(crossings.size(), 7u);
  // Directions alternate.
  for (std::size_t i = 1; i < crossings.size(); ++i)
    EXPECT_NE(crossings[i].direction, crossings[i - 1].direction);
}

TEST(ZeroCrossing, InterpolatedTimesAreAccurate) {
  // sin(2*pi*0.5*t) crosses zero (falling) at t=1, rising at t=2...
  std::vector<TimedSample> s;
  for (int i = 0; i <= 400; ++i) {
    const double t = i * 0.01;
    s.push_back({t, std::sin(kTwoPi * 0.5 * t)});
  }
  const auto crossings = detect_zero_crossings(s);
  ASSERT_GE(crossings.size(), 3u);
  EXPECT_NEAR(crossings[0].time_s, 1.0, 0.005);
  EXPECT_EQ(crossings[0].direction, CrossingDirection::Falling);
  EXPECT_NEAR(crossings[1].time_s, 2.0, 0.005);
  EXPECT_EQ(crossings[1].direction, CrossingDirection::Rising);
}

TEST(ZeroCrossing, HysteresisRejectsChatter) {
  // Small noise oscillation around zero plus one genuine crossing pair.
  std::vector<double> x;
  for (int i = 0; i < 50; ++i) x.push_back((i % 2) ? 0.05 : -0.05);
  for (int i = 0; i < 50; ++i) x.push_back(1.0);
  for (int i = 0; i < 50; ++i) x.push_back(-1.0);
  const auto noisy = detect_zero_crossings(x, 10.0, 0.0, /*hysteresis=*/0.0);
  const auto clean = detect_zero_crossings(x, 10.0, 0.0, /*hysteresis=*/0.3);
  EXPECT_GT(noisy.size(), 10u);
  EXPECT_EQ(clean.size(), 1u);  // only the genuine 1.0 -> -1.0 crossing
}

TEST(ZeroCrossing, HysteresisFromPeak) {
  std::vector<double> x{-0.5, 2.0, -1.0};
  EXPECT_DOUBLE_EQ(hysteresis_from_peak(x, 0.25), 0.5);
  EXPECT_DOUBLE_EQ(hysteresis_from_peak({}, 0.25), 0.0);
}

TEST(ZeroCrossing, EmptyAndShortInputs) {
  EXPECT_TRUE(detect_zero_crossings(std::vector<double>{}, 10.0).empty());
  EXPECT_TRUE(detect_zero_crossings(std::vector<double>{1.0}, 10.0).empty());
}

// --- peaks -----------------------------------------------------------------------

TEST(Peaks, FindsLocalMaxima) {
  std::vector<double> x{0.0, 1.0, 0.0, 2.0, 0.0, 3.0, 0.0};
  const auto peaks = find_peaks(x);
  ASSERT_EQ(peaks.size(), 3u);
  EXPECT_EQ(peaks[0].index, 1u);
  EXPECT_EQ(peaks[1].index, 3u);
  EXPECT_EQ(peaks[2].index, 5u);
  EXPECT_DOUBLE_EQ(peaks[2].value, 3.0);
}

TEST(Peaks, MinDistanceKeepsTallest) {
  std::vector<double> x{0.0, 1.0, 0.5, 2.0, 0.0};
  const auto peaks = find_peaks(x, /*min_distance=*/3);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].index, 3u);
}

TEST(Peaks, ProminenceFiltersShoulders) {
  // A small bump riding on the flank of a big peak has low prominence.
  std::vector<double> x{0.0, 5.0, 4.0, 4.2, 0.5, 0.0};
  const auto all = find_peaks(x, 1, 0.0);
  const auto prominent = find_peaks(x, 1, 1.0);
  EXPECT_EQ(all.size(), 2u);
  ASSERT_EQ(prominent.size(), 1u);
  EXPECT_EQ(prominent[0].index, 1u);
}

TEST(Peaks, FlatTopCountsOnce) {
  std::vector<double> x{0.0, 1.0, 1.0, 1.0, 0.0};
  const auto peaks = find_peaks(x);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].index, 2u);  // plateau centre
}

TEST(Peaks, ShortInput) {
  EXPECT_TRUE(find_peaks(std::vector<double>{1.0, 2.0}).empty());
}

}  // namespace
}  // namespace tagbreathe::signal
