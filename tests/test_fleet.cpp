// ReaderFleet + fleet chaos soak (ISSUE 6): config validation, the
// Up/Degraded/Dead health ladder, cross-reader handoff with overlap
// duplicate suppression, bounded rebalancing off dead readers (with
// parked-state restore and journal tail replay), alarm-only
// degradation, merged-stream determinism across shard counts and shard
// thread counts, and the >= 16-reader / >= 10k-user acceptance soak.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/chaos.hpp"
#include "core/demux.hpp"
#include "fleet/fleet.hpp"
#include "fleet/fleet_soak.hpp"
#include "obs/export.hpp"
#include "obs/observability.hpp"
#include "rfid/epc.hpp"
#include "soak_invariants.hpp"

namespace fs = std::filesystem;
using namespace tagbreathe;
using namespace tagbreathe::fleet;

namespace {

/// Unique scratch directory, removed on scope exit.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    static std::atomic<unsigned> counter{0};
    path = fs::temp_directory_path() /
           ("tagbreathe_fleet_" + std::to_string(::getpid()) + "_" + tag +
            "_" + std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

core::TagRead make_read(double t, std::uint64_t user, std::uint32_t tag = 1,
                        std::uint8_t antenna = 1) {
  core::TagRead r;
  r.time_s = t;
  r.epc = rfid::Epc96::from_user_tag(user, tag);
  r.antenna_id = antenna;
  r.frequency_hz = 920.625e6;
  r.phase_rad = 1.0 + 0.001 * t;  // distinct phases defeat dedup heuristics
  return r;
}

/// Small fleet with a fast health ladder: Degraded after 1 silent pump,
/// Dead after 2.
FleetConfig fast_fleet(std::size_t n_readers, std::size_t n_shards) {
  FleetConfig fc;
  fc.n_readers = n_readers;
  fc.n_shards = n_shards;
  fc.ingest.max_users = 0;
  fc.degraded_after_windows = 1;
  fc.dead_after_windows = 2;
  return fc;
}

// ---------------------------------------------------------------------------
// Configuration validation

TEST(FleetConfigValidation, RejectsNonsense) {
  const auto expect_throw = [](auto mutate) {
    FleetConfig cfg;
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  };
  expect_throw([](FleetConfig& c) { c.n_readers = 0; });
  expect_throw([](FleetConfig& c) { c.n_shards = 0; });
  expect_throw([](FleetConfig& c) { c.degraded_after_windows = 0; });
  expect_throw([](FleetConfig& c) {
    c.degraded_after_windows = 4;
    c.dead_after_windows = 4;  // must strictly exceed
  });
  expect_throw([](FleetConfig& c) { c.rebalance_deadline_s = 0.0; });
  expect_throw([](FleetConfig& c) { c.rebalance_batch = 0; });
  expect_throw([](FleetConfig& c) { c.handoff_suppress_s = -0.1; });
  expect_throw([](FleetConfig& c) { c.ingest.queue_capacity = 0; });
  expect_throw([](FleetConfig& c) { c.pipeline.window_s = -1.0; });
  FleetConfig ok;
  EXPECT_NO_THROW(ok.validate());
}

TEST(FleetConfigValidation, SoakConfigRejectsNonsense) {
  const auto expect_throw = [](auto mutate) {
    FleetSoakConfig cfg;
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
  };
  expect_throw([](FleetSoakConfig& c) { c.n_users = 0; });
  expect_throw([](FleetSoakConfig& c) { c.duration_s = 0.0; });
  expect_throw([](FleetSoakConfig& c) { c.roaming_users = c.n_users + 1; });
  expect_throw([](FleetSoakConfig& c) {
    // Chaos script naming a reader the fleet does not have.
    c.reader_chaos.push_back(
        core::ReaderChaosConfig::blackout(c.n_readers, 1.0, 1.0, 7));
  });
  FleetSoakConfig ok;
  EXPECT_NO_THROW(ok.validate());
}

TEST(FleetConfigValidation, HealthNamesAreStable) {
  EXPECT_STREQ(reader_health_name(ReaderHealth::Up), "Up");
  EXPECT_STREQ(reader_health_name(ReaderHealth::Degraded), "Degraded");
  EXPECT_STREQ(reader_health_name(ReaderHealth::Dead), "Dead");
}

// ---------------------------------------------------------------------------
// Reader-scoped chaos scenarios (satellite: core/chaos)

TEST(ReaderChaos, BlackoutWindowDropsAndCounts) {
  auto cfg = core::ReaderChaosConfig::blackout(/*reader=*/2, /*start_s=*/10.0,
                                               /*duration_s=*/5.0, /*seed=*/1);
  core::ReaderChaos chaos(cfg);
  EXPECT_EQ(chaos.reader(), 2u);
  EXPECT_FALSE(chaos.offline(9.999));
  EXPECT_TRUE(chaos.offline(10.0));
  EXPECT_TRUE(chaos.offline(14.999));
  EXPECT_FALSE(chaos.offline(15.0));

  std::vector<core::TagRead> out;
  chaos.feed(make_read(12.0, 1), out);  // inside the outage
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(chaos.outage_dropped(), 1u);
  chaos.feed(make_read(16.0, 1), out);  // after it
  chaos.flush(out);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(chaos.outage_dropped(), 1u);
}

TEST(ReaderChaos, FlapSchedulesRepeatedOutages) {
  // 3 cycles of 4 s up / 2 s down starting at t=1: dark in [5,7), [11,13),
  // [17,19).
  auto cfg = core::ReaderChaosConfig::flap(0, 1.0, 4.0, 2.0, 3, 7);
  core::ReaderChaos chaos(cfg);
  EXPECT_EQ(cfg.outages.size(), 3u);
  EXPECT_FALSE(chaos.offline(4.9));
  EXPECT_TRUE(chaos.offline(5.5));
  EXPECT_FALSE(chaos.offline(8.0));
  EXPECT_TRUE(chaos.offline(12.9));
  EXPECT_TRUE(chaos.offline(17.0));
  EXPECT_FALSE(chaos.offline(19.0));
}

TEST(ReaderChaos, BurstOverloadConfiguresReplay) {
  auto cfg = core::ReaderChaosConfig::burst_overload(1, 5.0, 3, 42);
  EXPECT_TRUE(cfg.outages.empty());
  EXPECT_EQ(cfg.chaos.burst_period_s, 5.0);
  EXPECT_EQ(cfg.chaos.burst_copies, 3u);
  EXPECT_NO_THROW(cfg.validate());

  auto bad = cfg;
  bad.outages.push_back({-1.0, 2.0});
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Session probe -> fleet health glue

TEST(HealthFromSession, MapsProbeOntoFleetLadder) {
  FleetConfig cfg;  // degraded after 4 windows, dead after 12
  const double pump = 0.25;

  llrp::SessionProbe p;
  p.streaming = true;
  p.state = llrp::SessionState::Streaming;
  p.silence_s = 0.1;
  EXPECT_EQ(health_from_session(p, cfg, pump), ReaderHealth::Up);

  p.silence_s = 4 * pump;  // one degraded window of silence
  EXPECT_EQ(health_from_session(p, cfg, pump), ReaderHealth::Degraded);

  p.silence_s = 0.0;
  p.state = llrp::SessionState::Degraded;  // supervisor already demoted it
  EXPECT_EQ(health_from_session(p, cfg, pump), ReaderHealth::Degraded);

  p.state = llrp::SessionState::Streaming;
  p.silence_s = 12 * pump;  // watchdog-scale silence
  EXPECT_EQ(health_from_session(p, cfg, pump), ReaderHealth::Dead);

  llrp::SessionProbe redialing;  // not streaming: reconnect in progress
  redialing.streaming = false;
  redialing.consecutive_failures = 1;
  EXPECT_EQ(health_from_session(redialing, cfg, pump), ReaderHealth::Degraded);
  redialing.consecutive_failures = 12;
  EXPECT_EQ(health_from_session(redialing, cfg, pump), ReaderHealth::Dead);
}

// The ladder's comparisons are >= on both silence thresholds: exactly
// at the boundary demotes (never the forgiving side), one tick below
// does not. The redial branch mirrors that for the failure streak.
TEST(HealthFromSession, ExactThresholdEdges) {
  FleetConfig cfg;  // degraded after 4 windows, dead after 12
  const double pump = 0.25;
  const double degraded_s = 4 * pump;  // 1.0 — exact in binary
  const double dead_s = 12 * pump;     // 3.0

  llrp::SessionProbe p;
  p.streaming = true;
  p.state = llrp::SessionState::Streaming;

  p.silence_s = degraded_s - 0.01;
  EXPECT_EQ(health_from_session(p, cfg, pump), ReaderHealth::Up);
  p.silence_s = degraded_s;
  EXPECT_EQ(health_from_session(p, cfg, pump), ReaderHealth::Degraded);
  p.silence_s = dead_s - 0.01;
  EXPECT_EQ(health_from_session(p, cfg, pump), ReaderHealth::Degraded);
  p.silence_s = dead_s;
  EXPECT_EQ(health_from_session(p, cfg, pump), ReaderHealth::Dead);

  // Redialing supervisor: one failure short of the dead threshold is
  // still only Degraded; at the threshold the reader is lost; and a
  // fresh streak of zero (dial in flight, nothing failed yet) is a
  // degradation, never Up.
  llrp::SessionProbe redialing;
  redialing.streaming = false;
  redialing.consecutive_failures = 11;
  EXPECT_EQ(health_from_session(redialing, cfg, pump),
            ReaderHealth::Degraded);
  redialing.consecutive_failures = 12;
  EXPECT_EQ(health_from_session(redialing, cfg, pump), ReaderHealth::Dead);
  redialing.consecutive_failures = 0;
  EXPECT_EQ(health_from_session(redialing, cfg, pump),
            ReaderHealth::Degraded);
}

// ---------------------------------------------------------------------------
// Routing, merge order, handoff

TEST(ReaderFleet, RoutesUsersToTheirHashShard) {
  ReaderFleet fleet(fast_fleet(2, 3));
  // Time-ordered interleave: each reader's validator sees a
  // nondecreasing clock, as a real inventory round would deliver.
  for (int i = 0; i < 4; ++i) {
    for (std::uint64_t u = 1; u <= 6; ++u)
      fleet.offer((u - 1) % 2, make_read(0.1 * (i + 1), u));
  }
  fleet.pump(1.0);

  EXPECT_EQ(fleet.counters().admitted, 24u);
  EXPECT_EQ(fleet.counters().routed, 24u);
  EXPECT_EQ(fleet.counters().quarantined, 0u);
  EXPECT_EQ(fleet.tracked_users(), 6u);
  for (std::uint64_t u = 1; u <= 6; ++u) {
    const std::size_t shard = fleet.shard_of(u);
    ASSERT_LT(shard, 3u);
    EXPECT_TRUE(fleet.shard_pipeline(shard).tracks(u))
        << "user " << u << " missing from shard " << shard;
    ASSERT_TRUE(fleet.covering_reader(u).has_value());
    EXPECT_EQ(*fleet.covering_reader(u), (u - 1) % 2);
  }
  EXPECT_EQ(fleet.users_on_reader(0) + fleet.users_on_reader(1), 6u);
}

TEST(ReaderFleet, OutOfRangeReaderIsRefused) {
  ReaderFleet fleet(fast_fleet(2, 1));
  EXPECT_EQ(fleet.offer(2, make_read(0.1, 1)), core::EnqueueResult::Closed);
  EXPECT_EQ(fleet.offer(0, make_read(0.1, 1)), core::EnqueueResult::Enqueued);
}

TEST(ReaderFleet, MergedEventsArriveInTimeUserOrder) {
  core::SoakConfig pop;
  pop.n_users = 4;
  pop.tags_per_user = 1;
  pop.duration_s = 12.0;
  pop.read_rate_hz = 4.0;

  FleetConfig fc = fast_fleet(2, 2);
  fc.pipeline.window_s = 8.0;
  fc.pipeline.update_period_s = 1.0;
  fc.pipeline.warmup_s = 2.0;

  std::vector<FleetEvent> events;
  ReaderFleet fleet(fc, [&](const FleetEvent& fe) { events.push_back(fe); });
  double next_pump = 0.25;
  for (const core::TagRead& read : core::make_soak_population(pop)) {
    while (read.time_s >= next_pump) {
      fleet.pump(next_pump);
      next_pump += 0.25;
    }
    fleet.offer((read.epc.user_id() - 1) % 2, read);
  }
  fleet.pump(pop.duration_s);

  ASSERT_FALSE(events.empty());
  for (std::size_t i = 1; i < events.size(); ++i) {
    const auto& a = events[i - 1].event;
    const auto& b = events[i].event;
    EXPECT_TRUE(a.time_s < b.time_s ||
                (a.time_s == b.time_s && a.user_id <= b.user_id))
        << "merge order violated at event " << i;
  }
  EXPECT_EQ(fleet.counters().events, events.size());
}

TEST(ReaderFleet, OverlapDuplicateIsSuppressed) {
  ReaderFleet fleet(fast_fleet(2, 1));
  // Both antennas hear the same inventory round: one read delivered by
  // reader 0 and reader 1 with (near-)identical timestamps.
  fleet.offer(0, make_read(1.0, 7));
  fleet.offer(1, make_read(1.01, 7));
  fleet.pump(1.25);

  EXPECT_EQ(fleet.counters().admitted, 2u);
  EXPECT_EQ(fleet.counters().routed, 1u);
  EXPECT_EQ(fleet.counters().handoff_suppressed, 1u);
  EXPECT_EQ(fleet.counters().handoffs, 0u);
  ASSERT_TRUE(fleet.covering_reader(7).has_value());
  EXPECT_EQ(*fleet.covering_reader(7), 0u);  // first heard wins
}

TEST(ReaderFleet, HandoffBeyondSuppressionWindowMigratesStream) {
  ReaderFleet fleet(fast_fleet(2, 1));
  fleet.offer(0, make_read(1.0, 7));
  fleet.pump(1.25);
  // The tag moved: the next read arrives from reader 1 well past the
  // 50 ms overlap window.
  fleet.offer(1, make_read(2.0, 7));
  fleet.offer(0, make_read(2.2, 8));  // reader 0 keeps feeding user 8
  fleet.pump(2.25);

  EXPECT_EQ(fleet.counters().handoffs, 1u);
  EXPECT_EQ(fleet.counters().handoff_suppressed, 0u);
  ASSERT_TRUE(fleet.covering_reader(7).has_value());
  EXPECT_EQ(*fleet.covering_reader(7), 1u);
  EXPECT_EQ(fleet.users_on_reader(0), 1u);  // user 8 stayed
  EXPECT_EQ(fleet.users_on_reader(1), 1u);
  // The pipeline kept one continuous stream: no state was dropped.
  EXPECT_TRUE(fleet.shard_pipeline(fleet.shard_of(7)).tracks(7));
}

// The overlap window is half-open: a cross-reader read at EXACTLY
// last_time + handoff_suppress_s is a migration, not a duplicate
// (suppression uses strict <). Both sides of the boundary in one test
// so the window can't silently widen or shrink.
TEST(ReaderFleet, HandoffAtExactOverlapBoundaryRoutes) {
  FleetConfig fc = fast_fleet(2, 1);
  fc.handoff_suppress_s = 0.5;  // exact in binary, no epsilon games
  ReaderFleet fleet(fc);
  fleet.offer(0, make_read(1.0, 7));
  fleet.pump(1.1);
  ASSERT_TRUE(fleet.covering_reader(7).has_value());
  ASSERT_EQ(*fleet.covering_reader(7), 0u);

  // Strictly inside the window: overlap duplicate, suppressed. (A
  // suppressed read must not refresh the window either — the boundary
  // below is still measured from the t = 1.0 read.)
  fleet.offer(1, make_read(1.25, 7));
  fleet.pump(1.3);
  EXPECT_EQ(fleet.counters().handoff_suppressed, 1u);
  EXPECT_EQ(fleet.counters().handoffs, 0u);
  EXPECT_EQ(*fleet.covering_reader(7), 0u);

  // t == 1.0 + 0.5: the boundary read routes and migrates coverage.
  fleet.offer(1, make_read(1.5, 7));
  fleet.pump(1.6);
  EXPECT_EQ(fleet.counters().handoffs, 1u);
  EXPECT_EQ(fleet.counters().handoff_suppressed, 1u);
  EXPECT_EQ(*fleet.covering_reader(7), 1u);
  EXPECT_TRUE(fleet.shard_pipeline(fleet.shard_of(7)).tracks(7));
}

// ---------------------------------------------------------------------------
// Reader death, bounded rebalance, cascading loss

TEST(ReaderFleet, SilentCoveringReaderWalksTheHealthLadder) {
  FleetConfig fc = fast_fleet(2, 1);
  fc.degraded_after_windows = 2;
  fc.dead_after_windows = 4;
  ReaderFleet fleet(fc);
  fleet.offer(0, make_read(0.5, 1));
  fleet.pump(1.0);
  EXPECT_EQ(fleet.reader_health(0), ReaderHealth::Up);

  fleet.pump(1.25);  // silence 1
  EXPECT_EQ(fleet.reader_health(0), ReaderHealth::Up);
  fleet.pump(1.5);  // silence 2
  EXPECT_EQ(fleet.reader_health(0), ReaderHealth::Degraded);
  fleet.pump(1.75);
  fleet.pump(2.0);  // silence 4: dead
  EXPECT_EQ(fleet.reader_health(0), ReaderHealth::Dead);
  EXPECT_EQ(fleet.counters().readers_died, 1u);
  // Reader 1 never covered anybody: an idle spare stays Up.
  EXPECT_EQ(fleet.reader_health(1), ReaderHealth::Up);

  // Traffic resumes through reader 0: it revives.
  fleet.offer(0, make_read(2.4, 1));
  fleet.pump(2.5);
  EXPECT_EQ(fleet.reader_health(0), ReaderHealth::Up);
  EXPECT_EQ(fleet.counters().readers_revived, 1u);
}

TEST(ReaderFleet, DeadReaderRebalancesUsersInBoundedBatches) {
  FleetConfig fc = fast_fleet(3, 2);
  fc.rebalance_batch = 2;
  ReaderFleet fleet(fc);
  // Users 1-4 on reader 0, user 5 on reader 1, reader 2 is a spare.
  for (std::uint64_t u = 1; u <= 4; ++u) fleet.offer(0, make_read(0.5, u));
  fleet.offer(1, make_read(0.5, 5));
  fleet.pump(1.0);
  ASSERT_EQ(fleet.users_on_reader(0), 4u);

  // Reader 0 goes silent; reader 1 keeps hearing user 5.
  fleet.offer(1, make_read(1.2, 5));
  fleet.pump(1.25);
  fleet.offer(1, make_read(1.45, 5));
  fleet.pump(1.5);  // 2nd silent window: reader 0 dies, batch of 2 moves
  EXPECT_EQ(fleet.reader_health(0), ReaderHealth::Dead);
  EXPECT_EQ(fleet.counters().users_rebalanced, 2u);
  EXPECT_EQ(fleet.pending_rebalances(), 2u);

  fleet.offer(1, make_read(1.7, 5));
  fleet.pump(1.75);  // next batch drains the backlog
  EXPECT_EQ(fleet.counters().users_rebalanced, 4u);
  EXPECT_EQ(fleet.pending_rebalances(), 0u);
  EXPECT_EQ(fleet.counters().rebalances, 2u);
  EXPECT_EQ(fleet.counters().rebalance_deadline_misses, 0u);

  // Every user stays covered by a live reader and keeps its shard state.
  EXPECT_EQ(fleet.users_on_reader(0), 0u);
  EXPECT_EQ(fleet.users_on_reader(1) + fleet.users_on_reader(2), 5u);
  for (std::uint64_t u = 1; u <= 5; ++u) {
    ASSERT_TRUE(fleet.covering_reader(u).has_value()) << "user " << u;
    EXPECT_NE(*fleet.covering_reader(u), 0u) << "user " << u;
    EXPECT_TRUE(fleet.shard_pipeline(fleet.shard_of(u)).tracks(u));
  }
}

TEST(ReaderFleet, CascadingReaderLossKeepsUserCovered) {
  ReaderFleet fleet(fast_fleet(3, 1));
  fleet.offer(0, make_read(0.5, 1));
  fleet.pump(1.0);

  fleet.pump(1.25);
  fleet.pump(1.5);  // reader 0 dead -> user 1 rebalanced (to reader 1)
  ASSERT_EQ(fleet.reader_health(0), ReaderHealth::Dead);
  ASSERT_EQ(fleet.counters().users_rebalanced, 1u);
  const std::size_t first_target = *fleet.covering_reader(1);
  ASSERT_NE(first_target, 0u);

  // The rescue reader dies too before hearing a single read.
  fleet.pump(1.75);
  fleet.pump(2.0);
  EXPECT_EQ(fleet.reader_health(first_target), ReaderHealth::Dead);
  EXPECT_EQ(fleet.counters().users_rebalanced, 2u);
  ASSERT_TRUE(fleet.covering_reader(1).has_value());
  const std::size_t second_target = *fleet.covering_reader(1);
  EXPECT_NE(second_target, 0u);
  EXPECT_NE(second_target, first_target);
  EXPECT_TRUE(fleet.shard_pipeline(fleet.shard_of(1)).tracks(1));
}

TEST(ReaderFleet, LinkProbeAcceleratesDeathAndRevivesInstantly) {
  ReaderFleet fleet(fast_fleet(2, 1));
  // Link down: the ladder runs even though reader 1 covers nobody.
  fleet.probe_reader(1, false, 0.0);
  fleet.pump(0.25);
  fleet.pump(0.5);
  EXPECT_EQ(fleet.reader_health(1), ReaderHealth::Dead);
  // Supervisor reports the link back: immediate revive, no traffic yet.
  fleet.probe_reader(1, true, 0.75);
  EXPECT_EQ(fleet.reader_health(1), ReaderHealth::Up);
  EXPECT_EQ(fleet.counters().readers_revived, 1u);
}

// ---------------------------------------------------------------------------
// Eviction parking, journal tail replay

TEST(ReaderFleet, ValidatorEvictionParksAndRestoresTheUser) {
  FleetConfig fc = fast_fleet(1, 1);
  fc.ingest.max_users = 1;  // per-reader admission cap forces LRU churn
  ReaderFleet fleet(fc);

  for (int i = 0; i < 4; ++i) fleet.offer(0, make_read(0.2 + 0.2 * i, 1));
  fleet.pump(1.0);
  ASSERT_TRUE(fleet.shard_pipeline(0).tracks(1));

  // User 2 arrives at the cap: user 1 is evicted and parked.
  fleet.offer(0, make_read(1.1, 2));
  fleet.pump(1.25);
  EXPECT_EQ(fleet.counters().users_parked, 1u);
  EXPECT_FALSE(fleet.shard_pipeline(0).tracks(1));
  EXPECT_FALSE(fleet.covering_reader(1).has_value());

  // User 1 re-admitted: its parked window is re-imported, not rebuilt.
  fleet.offer(0, make_read(1.6, 1));
  fleet.pump(1.75);
  EXPECT_EQ(fleet.counters().users_restored, 1u);
  EXPECT_TRUE(fleet.shard_pipeline(0).tracks(1));
  ASSERT_TRUE(fleet.covering_reader(1).has_value());
}

TEST(ReaderFleet, ParkRestoreChurnConvergesWithUninterruptedGoldenRun) {
  // A breathing-phase schedule for user 1 with a mid-run burst from
  // user 2. Under a 1-user admission cap the burst parks user 1's demux
  // window in the arena-backed lot and the next user-1 read restores
  // it; a golden fleet with no cap never parks anyone. Because parking
  // preserves the full buffered window, the restored run must converge:
  // the same RateUpdate values on the shared tick grid and the same
  // final analysis, byte for byte.
  auto breath_read = [](double t, std::uint64_t user) {
    core::TagRead r;
    r.time_s = t;
    r.epc = rfid::Epc96::from_user_tag(user, 1);
    r.antenna_id = 1;
    r.frequency_hz = 920.625e6;
    r.phase_rad = 0.5 * std::sin(2.0 * 3.14159265358979 * t / 4.0);
    return r;
  };

  struct RunResult {
    std::vector<std::pair<double, double>> tail_rates;  // (tick, bpm), t>=14
    double final_rate = 0.0;
    std::size_t parked = 0;
    std::size_t restored = 0;
  };
  auto run = [&](std::size_t admission_cap) {
    FleetConfig fc = fast_fleet(1, 1);
    fc.ingest.max_users = admission_cap;
    RunResult result;
    ReaderFleet fleet(fc, [&](const FleetEvent& e) {
      if (e.event.user_id == 1 &&
          e.event.kind == core::PipelineEventKind::RateUpdate &&
          e.event.time_s >= 14.0) {
        result.tail_rates.emplace_back(e.event.time_s, e.event.rate_bpm);
      }
    });
    for (double t = 0.0; t <= 24.0; t += 0.25) {
      const bool burst = t >= 10.0 && t < 11.5;
      fleet.offer(0, breath_read(t, burst ? 2 : 1));
      fleet.pump(t);
    }
    const core::UserAnalysis* final_analysis =
        fleet.shard_pipeline(0).latest_analysis(1);
    EXPECT_NE(final_analysis, nullptr);
    if (final_analysis != nullptr) {
      result.final_rate = final_analysis->rate.rate_bpm;
    }
    result.parked = fleet.counters().users_parked;
    result.restored = fleet.counters().users_restored;
    return result;
  };

  const RunResult golden = run(/*admission_cap=*/0);
  const RunResult pressure = run(/*admission_cap=*/1);

  EXPECT_EQ(golden.parked, 0u);
  EXPECT_GE(pressure.parked, 2u);    // user 1 at the burst, user 2 after it
  EXPECT_GE(pressure.restored, 1u);  // user 1's window came back from the lot

  ASSERT_FALSE(golden.tail_rates.empty());
  ASSERT_EQ(pressure.tail_rates.size(), golden.tail_rates.size());
  for (std::size_t i = 0; i < golden.tail_rates.size(); ++i) {
    EXPECT_DOUBLE_EQ(pressure.tail_rates[i].first, golden.tail_rates[i].first);
    EXPECT_DOUBLE_EQ(pressure.tail_rates[i].second,
                     golden.tail_rates[i].second)
        << "restored window diverged from golden at t="
        << golden.tail_rates[i].first;
  }
  EXPECT_DOUBLE_EQ(pressure.final_rate, golden.final_rate);
}

TEST(ReaderFleet, RebalanceReplaysJournalTailWhenShardStateWasLost) {
  TempDir dir("fleet_replay");
  FleetConfig fc = fast_fleet(2, 1);
  fc.durability_directory = dir.str();
  fc.pipeline.max_users = 1;  // per-shard cap silently drops the LRU user
  fc.parked_users_cap = 0;    // no parking: force the journal path
  ReaderFleet fleet(fc);

  for (int i = 0; i < 4; ++i) fleet.offer(0, make_read(0.2 + 0.2 * i, 1));
  fleet.pump(1.0);
  ASSERT_TRUE(fleet.shard_pipeline(0).tracks(1));
  // User 2 lands on the same shard: the pipeline cap evicts user 1's
  // state but the fleet still lists reader 0 as covering it.
  fleet.offer(1, make_read(1.2, 2));
  fleet.pump(1.25);
  ASSERT_FALSE(fleet.shard_pipeline(0).tracks(1));
  ASSERT_TRUE(fleet.covering_reader(1).has_value());

  // Reader 0 dies; the rebalance must resurrect user 1 from the shard
  // journal tail because no parked state exists.
  fleet.offer(1, make_read(1.45, 2));
  fleet.pump(1.5);
  fleet.offer(1, make_read(1.7, 2));
  fleet.pump(1.75);
  EXPECT_EQ(fleet.reader_health(0), ReaderHealth::Dead);
  EXPECT_EQ(fleet.counters().users_rebalanced, 1u);
  EXPECT_EQ(fleet.counters().journal_tail_replays, 1u);
  EXPECT_GT(fleet.counters().journal_reads_replayed, 0u);
  EXPECT_TRUE(fleet.shard_pipeline(0).tracks(1));
  EXPECT_EQ(*fleet.covering_reader(1), 1u);
}

TEST(StreamDemux, ExportImportRoundTripsOneUser) {
  core::StreamDemux source;
  source.add(make_read(1.0, 7, /*tag=*/1, /*antenna=*/1));
  source.add(make_read(1.5, 7, /*tag=*/1, /*antenna=*/2));
  source.add(make_read(2.0, 7, /*tag=*/2, /*antenna=*/1));
  source.add(make_read(1.0, 8));  // different user: must not travel

  const core::DemuxState state = source.export_user(7);
  ASSERT_EQ(state.streams.size(), 3u);
  for (const auto& stream : state.streams)
    EXPECT_EQ(stream.key.user_id, 7u);

  core::StreamDemux target;
  target.add(make_read(2.5, 7, /*tag=*/1, /*antenna=*/1));  // fresh head
  EXPECT_EQ(target.import_user(state), 3u);
  const auto streams = target.streams_for_user(7);
  ASSERT_EQ(streams.size(), 3u);
  // The replayed tail merged under the fresh read, time-ordered.
  std::size_t total = 0;
  for (const auto* s : streams) {
    total += s->size();
    for (std::size_t i = 1; i < s->size(); ++i)
      EXPECT_LE((*s)[i - 1].time_s, (*s)[i].time_s);
  }
  EXPECT_EQ(total, 4u);
  EXPECT_TRUE(target.streams_for_user(8).empty());
}

// ---------------------------------------------------------------------------
// Alarm-only degradation

TEST(ReaderFleet, AlarmOnlyModeSuppressesRoutineRateUpdates) {
  core::SoakConfig pop;
  pop.n_users = 3;
  pop.tags_per_user = 1;
  pop.duration_s = 10.0;
  pop.read_rate_hz = 4.0;

  FleetConfig fc = fast_fleet(1, 1);
  fc.alarm_only_above_users = 1;  // census of 3 exceeds it immediately
  fc.pipeline.window_s = 8.0;
  fc.pipeline.update_period_s = 1.0;
  fc.pipeline.warmup_s = 2.0;

  std::size_t rate_updates = 0;
  ReaderFleet fleet(fc, [&](const FleetEvent& fe) {
    if (fe.event.kind == core::PipelineEventKind::RateUpdate) ++rate_updates;
  });
  double next_pump = 0.25;
  for (const core::TagRead& read : core::make_soak_population(pop)) {
    while (read.time_s >= next_pump) {
      fleet.pump(next_pump);
      next_pump += 0.25;
    }
    fleet.offer(0, read);
  }
  fleet.pump(pop.duration_s);

  EXPECT_EQ(rate_updates, 0u);
  EXPECT_GT(fleet.counters().rate_updates_suppressed, 0u);
}

// ---------------------------------------------------------------------------
// Observability binding

TEST(ReaderFleet, BindsLabelledInstrumentsAndScrapesByteStably) {
  obs::Observability hub;
  FleetSoakConfig cfg;
  cfg.n_readers = 4;
  cfg.n_users = 6;
  cfg.duration_s = 8.0;
  cfg.read_rate_hz = 4.0;
  cfg.fleet.n_shards = 2;
  cfg.fleet.ingest.max_users = 0;
  cfg.fleet.pipeline.window_s = 6.0;
  cfg.fleet.pipeline.warmup_s = 2.0;
  cfg.observability = &hub;
  const FleetSoakReport report = run_fleet_soak(cfg);
  testutil::expect_no_violations(report.violations);

  const std::string scrape = obs::to_prometheus(hub.snapshot());
  EXPECT_NE(scrape.find("fleet_reader_health{reader=\"r000\"}"),
            std::string::npos);
  EXPECT_NE(scrape.find("fleet_reader_health{reader=\"r003\"}"),
            std::string::npos);
  EXPECT_NE(scrape.find("fleet_shard_users{shard=\"s01\"}"),
            std::string::npos);
  EXPECT_NE(scrape.find("fleet_admitted_total"), std::string::npos);
  // Two exports of the same snapshot are byte-identical.
  const auto snapshot = hub.snapshot();
  EXPECT_EQ(obs::to_prometheus(snapshot), obs::to_prometheus(snapshot));
}

// ---------------------------------------------------------------------------
// Fleet soak: determinism gates

FleetSoakConfig determinism_soak() {
  FleetSoakConfig cfg;
  cfg.n_readers = 4;
  cfg.n_users = 8;
  cfg.tags_per_user = 1;
  cfg.duration_s = 30.0;
  cfg.read_rate_hz = 2.0;
  cfg.fleet.n_shards = 2;
  cfg.fleet.ingest.max_users = 0;    // caps off: see determinism contract
  cfg.fleet.pipeline.max_users = 0;
  cfg.fleet.pipeline.window_s = 12.0;
  cfg.fleet.pipeline.update_period_s = 1.0;
  cfg.fleet.pipeline.warmup_s = 4.0;
  cfg.roaming_users = 2;
  cfg.roam_period_s = 8.0;
  cfg.reader_chaos.push_back(
      core::ReaderChaosConfig::blackout(1, 10.0, 5.0, 11));
  cfg.reader_chaos.push_back(core::ReaderChaosConfig::flap(2, 4.0, 6.0, 2.0,
                                                           2, 13));
  return cfg;
}

TEST(FleetSoakDeterminism, SameConfigTwiceProducesIdenticalMergedLog) {
  const FleetSoakConfig cfg = determinism_soak();
  const FleetSoakReport a = run_fleet_soak(cfg);
  const FleetSoakReport b = run_fleet_soak(cfg);
  testutil::expect_no_violations(a.violations);
  ASSERT_FALSE(a.event_log.empty());
  EXPECT_EQ(a.event_log, b.event_log);
  EXPECT_EQ(a.event_log_hash, b.event_log_hash);
  EXPECT_GT(a.counters.handoffs, 0u);           // blackout forced failover
  EXPECT_GT(a.counters.handoff_suppressed, 0u); // roam overlap duplicates
  EXPECT_GT(a.counters.readers_died, 0u);
  EXPECT_GT(a.counters.readers_revived, 0u);
}

TEST(FleetSoakDeterminism, MergedLogIsInvariantAcrossShardCounts) {
  FleetSoakConfig one = determinism_soak();
  one.record_event_log = false;
  one.fleet.n_shards = 1;
  FleetSoakConfig four = determinism_soak();
  four.record_event_log = false;
  four.fleet.n_shards = 4;
  const FleetSoakReport a = run_fleet_soak(one);
  const FleetSoakReport b = run_fleet_soak(four);
  testutil::expect_no_violations(a.violations);
  testutil::expect_no_violations(b.violations);
  ASSERT_GT(a.events, 0u);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.event_log_hash, b.event_log_hash);
}

TEST(FleetSoakDeterminism, MergedLogIsInvariantAcrossShardThreads) {
  FleetSoakConfig serial = determinism_soak();
  serial.record_event_log = false;
  serial.fleet.n_shards = 4;
  serial.fleet.shard_threads = 0;
  FleetSoakConfig threaded = determinism_soak();
  threaded.record_event_log = false;
  threaded.fleet.n_shards = 4;
  threaded.fleet.shard_threads = 3;
  const FleetSoakReport a = run_fleet_soak(serial);
  const FleetSoakReport b = run_fleet_soak(threaded);
  testutil::expect_no_violations(a.violations);
  testutil::expect_no_violations(b.violations);
  ASSERT_GT(a.events, 0u);
  EXPECT_EQ(a.event_log_hash, b.event_log_hash);
}

// ---------------------------------------------------------------------------
// Acceptance soak: >= 16 readers, >= 10k users, kills + revives mid-run

TEST(FleetSoakAcceptance, WardScaleFleetSurvivesKillsAndRevives) {
  FleetSoakConfig cfg;
  cfg.n_readers = 16;
  cfg.n_users = 10000;
  cfg.tags_per_user = 1;
  cfg.duration_s = 20.0;
  cfg.read_rate_hz = 1.0;
  cfg.fleet.n_shards = 8;
  cfg.fleet.shard_threads = 4;
  cfg.fleet.ingest.max_users = 0;  // 625 users/reader >> default cap
  cfg.fleet.pipeline.max_users = 0;
  cfg.fleet.pipeline.window_s = 12.0;
  cfg.fleet.pipeline.update_period_s = 4.0;
  cfg.fleet.pipeline.warmup_s = 4.0;
  cfg.fleet.parked_users_cap = 16384;
  cfg.roaming_users = 200;
  cfg.roam_period_s = 6.0;
  cfg.record_event_log = false;  // hash-only at this census
  // Kill reader 3 for 6 s mid-run (dies at +3 s, revives on probe), and
  // flap reader 5 twice.
  cfg.reader_chaos.push_back(
      core::ReaderChaosConfig::blackout(3, 6.0, 6.0, 3));
  cfg.reader_chaos.push_back(core::ReaderChaosConfig::flap(5, 2.0, 4.0, 3.0,
                                                           2, 5));

  const FleetSoakReport report = run_fleet_soak(cfg);
  testutil::expect_no_violations(report.violations);
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.events, 0u);
  EXPECT_GT(report.counters.readers_died, 0u);
  EXPECT_GT(report.counters.readers_revived, 0u);
  EXPECT_GT(report.counters.handoffs, 0u);
  EXPECT_GT(report.counters.handoff_suppressed, 0u);
  EXPECT_EQ(report.counters.rebalance_deadline_misses, 0u);
  // Conservation: every drained read was admitted or quarantined, and
  // every admitted read was routed or suppressed as an overlap dup.
  EXPECT_EQ(report.counters.admitted,
            report.counters.routed + report.counters.handoff_suppressed);
}

}  // namespace
