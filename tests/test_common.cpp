// Unit tests: common substrate (units, rng, stats, ring buffer, csv,
// table, geometry).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/csv.hpp"
#include "common/geometry.hpp"
#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace tagbreathe::common {
namespace {

// --- units -------------------------------------------------------------

TEST(Units, DbmWattsRoundTrip) {
  for (double dbm : {-80.0, -30.0, 0.0, 10.0, 30.0}) {
    EXPECT_NEAR(watts_to_dbm(dbm_to_watts(dbm)), dbm, 1e-9);
  }
  EXPECT_NEAR(dbm_to_watts(30.0), 1.0, 1e-12);   // 30 dBm = 1 W
  EXPECT_NEAR(dbm_to_watts(0.0), 1e-3, 1e-15);   // 0 dBm = 1 mW
}

TEST(Units, DbLinear) {
  EXPECT_NEAR(db_to_linear(3.0103), 2.0, 1e-3);
  EXPECT_NEAR(linear_to_db(100.0), 20.0, 1e-9);
  EXPECT_NEAR(linear_to_db(db_to_linear(-7.5)), -7.5, 1e-9);
}

TEST(Units, BpmHz) {
  EXPECT_DOUBLE_EQ(bpm_to_hz(60.0), 1.0);
  EXPECT_DOUBLE_EQ(hz_to_bpm(0.67), 40.2);
  EXPECT_DOUBLE_EQ(hz_to_bpm(bpm_to_hz(12.3)), 12.3);
}

TEST(Units, DegRad) {
  EXPECT_NEAR(deg_to_rad(180.0), kPi, 1e-12);
  EXPECT_NEAR(rad_to_deg(kPi / 2.0), 90.0, 1e-12);
}

TEST(Units, WavelengthAt915MHz) {
  EXPECT_NEAR(wavelength_m(915e6), 0.3276, 1e-3);
}

TEST(Units, WrapPhase2Pi) {
  EXPECT_NEAR(wrap_phase_2pi(0.0), 0.0, 1e-12);
  EXPECT_NEAR(wrap_phase_2pi(kTwoPi + 0.5), 0.5, 1e-12);
  EXPECT_NEAR(wrap_phase_2pi(-0.5), kTwoPi - 0.5, 1e-12);
  for (double x : {-25.0, -3.0, 0.1, 7.9, 123.4}) {
    const double w = wrap_phase_2pi(x);
    EXPECT_GE(w, 0.0);
    EXPECT_LT(w, kTwoPi);
    // Same angle modulo 2π.
    EXPECT_NEAR(std::remainder(w - x, kTwoPi), 0.0, 1e-9);
  }
}

TEST(Units, WrapPhasePi) {
  EXPECT_NEAR(wrap_phase_pi(kPi + 0.25), -kPi + 0.25, 1e-12);
  for (double x : {-9.7, -0.2, 0.0, 2.5, 31.0}) {
    const double w = wrap_phase_pi(x);
    EXPECT_GT(w, -kPi - 1e-12);
    EXPECT_LE(w, kPi + 1e-12);
    EXPECT_NEAR(std::remainder(w - x, kTwoPi), 0.0, 1e-9);
  }
}

// --- rng ---------------------------------------------------------------

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeMeanAndBounds) {
  Rng rng(8);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform(-2.0, 6.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 6.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 2.0, 0.1);
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng rng(9);
  int counts[6] = {0};
  for (int i = 0; i < 60000; ++i) ++counts[rng.uniform_int(0, 5)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, WrappedNormalStaysOnCircleAndMatchesSigmaWhenSmall) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    const double w = rng.wrapped_normal(0.1);
    EXPECT_GT(w, -kPi - 1e-12);
    EXPECT_LE(w, kPi + 1e-12);
    stats.add(w);
  }
  // For sigma << pi wrapping is negligible.
  EXPECT_NEAR(stats.stddev(), 0.1, 0.005);
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(12);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 50000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.02);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(99);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  // Children should produce different streams from each other and the
  // parent.
  int same12 = 0, same1p = 0;
  for (int i = 0; i < 100; ++i) {
    const double c1 = child1.uniform();
    const double c2 = child2.uniform();
    const double p = parent.uniform();
    if (c1 == c2) ++same12;
    if (c1 == p) ++same1p;
  }
  EXPECT_LT(same12, 3);
  EXPECT_LT(same1p, 3);
}

// --- stats -------------------------------------------------------------

TEST(Stats, WelfordMatchesBatch) {
  Rng rng(20);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 3.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-6);
  EXPECT_DOUBLE_EQ(rs.min(), min_value(xs));
  EXPECT_DOUBLE_EQ(rs.max(), max_value(xs));
}

TEST(Stats, WelfordMergeEqualsCombined) {
  Rng rng(21);
  RunningStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(Stats, EmptyAndSingle) {
  RunningStats rs;
  EXPECT_TRUE(rs.empty());
  EXPECT_EQ(rs.mean(), 0.0);
  rs.add(7.0);
  EXPECT_EQ(rs.mean(), 7.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(Stats, MedianAndPercentile) {
  std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.0);
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
}

TEST(Stats, RmseMae) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{1.0, 4.0, 3.0};
  EXPECT_NEAR(rmse(a, b), std::sqrt(4.0 / 3.0), 1e-12);
  EXPECT_NEAR(mae(a, b), 2.0 / 3.0, 1e-12);
  EXPECT_THROW(rmse(a, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Stats, PearsonCorrelation) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  std::vector<double> y{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> ny{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(x, ny), -1.0, 1e-12);
  std::vector<double> constant{5.0, 5.0, 5.0, 5.0};
  EXPECT_EQ(pearson(x, constant), 0.0);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(2.5 * i - 7.0);
  }
  const auto fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 1e-9);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-9);
}

TEST(Stats, NormalizePeak) {
  std::vector<double> xs{1.0, 3.0, 5.0};  // mean 3, peak dev 2
  normalize_peak(xs);
  EXPECT_NEAR(xs[0], -1.0, 1e-12);
  EXPECT_NEAR(xs[1], 0.0, 1e-12);
  EXPECT_NEAR(xs[2], 1.0, 1e-12);
  std::vector<double> flat{4.0, 4.0};
  normalize_peak(flat);
  EXPECT_DOUBLE_EQ(flat[0], 0.0);
}

// --- ring buffer ---------------------------------------------------------

TEST(RingBuffer, PushAndEvict) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.empty());
  rb.push(1);
  rb.push(2);
  rb.push(3);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.front(), 1);
  rb.push(4);  // evicts 1
  EXPECT_EQ(rb.front(), 2);
  EXPECT_EQ(rb.back(), 4);
  EXPECT_EQ(rb.size(), 3u);
  const auto v = rb.to_vector();
  EXPECT_EQ(v, (std::vector<int>{2, 3, 4}));
}

TEST(RingBuffer, IndexAndErrors) {
  RingBuffer<int> rb(2);
  rb.push(10);
  EXPECT_EQ(rb[0], 10);
  EXPECT_THROW(rb[1], std::out_of_range);
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

TEST(RingBuffer, Clear) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(5);
  EXPECT_EQ(rb.front(), 5);
}

// --- csv -----------------------------------------------------------------

TEST(Csv, EscapeRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRowsAndValidatesWidth) {
  const auto path =
      (std::filesystem::temp_directory_path() / "tb_csv_test.csv").string();
  {
    CsvWriter csv(path, {"a", "b"});
    csv.row({1.0, 2.0});
    csv.row({3.5, -4.25});
    EXPECT_THROW(csv.row({1.0}), std::invalid_argument);
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 2), "1,");
  std::filesystem::remove(path);
}

// --- table -----------------------------------------------------------------

TEST(Table, AlignsColumns) {
  ConsoleTable t({"name", "v"});
  t.add_row({std::vector<std::string>{"x", "1.5"}});
  t.add_row(std::vector<double>{2.0, 3.25}, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("3.25"), std::string::npos);
  EXPECT_THROW(t.add_row(std::vector<std::string>{"too", "many", "cells"}),
               std::invalid_argument);
}

TEST(Table, AsciiBar) {
  EXPECT_EQ(ascii_bar(1.0, 1.0, 4), "####");
  EXPECT_EQ(ascii_bar(0.0, 1.0, 4), "....");
  EXPECT_EQ(ascii_bar(0.5, 1.0, 4), "##..");
  EXPECT_EQ(ascii_bar(2.0, 1.0, 4), "####");  // clamped
}

TEST(Table, Sparkline) {
  const std::string s = sparkline({0.0, 1.0});
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(sparkline({}).empty());
}

// --- geometry -----------------------------------------------------------

TEST(Geometry, VectorOps) {
  const Vec3 a{1.0, 2.0, 3.0};
  const Vec3 b{4.0, -2.0, 1.0};
  EXPECT_DOUBLE_EQ((a + b).x, 5.0);
  EXPECT_DOUBLE_EQ((a - b).y, 4.0);
  EXPECT_DOUBLE_EQ(a.dot(b), 3.0);
  EXPECT_DOUBLE_EQ((2.0 * a).z, 6.0);
  const Vec3 v345{3.0, 4.0, 0.0};
  EXPECT_NEAR(v345.norm(), 5.0, 1e-12);
  EXPECT_NEAR(v345.normalized().norm(), 1.0, 1e-12);
  const Vec3 zero{};
  EXPECT_DOUBLE_EQ(zero.normalized().norm(), 0.0);
}

TEST(Geometry, DistanceAndAngle) {
  EXPECT_NEAR(distance({0, 0, 0}, {1, 1, 1}), std::sqrt(3.0), 1e-12);
  EXPECT_NEAR(angle_between({1, 0, 0}, {0, 1, 0}), kPi / 2.0, 1e-12);
  EXPECT_NEAR(angle_between({1, 0, 0}, {-1, 0, 0}), kPi, 1e-12);
  EXPECT_DOUBLE_EQ(angle_between({0, 0, 0}, {1, 0, 0}), 0.0);
}

TEST(Geometry, RotateZ) {
  const Vec3 x{1.0, 0.0, 0.5};
  const Vec3 r = rotate_z(x, kPi / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.z, 0.5);
}

}  // namespace
}  // namespace tagbreathe::common
