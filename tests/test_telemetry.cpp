// Live telemetry service (ISSUE 7): wire-protocol framing and malformed
// stream rejection, EventBus conservation law / overflow policies /
// Up-Lagging-Shed ladder / resume-cursor replay, TelemetryService
// subscribe-stream-heartbeat-shed lifecycle + HTTP scrape endpoint,
// TelemetryClient reconnect with jittered backoff, the TSan
// publish-vs-drain race, and the 10k-subscriber chaos soak with the
// baseline-hash non-interference gate.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/chaos.hpp"
#include "llrp/fault_channel.hpp"
#include "llrp/transport.hpp"
#include "obs/export.hpp"
#include "obs/observability.hpp"
#include "telemetry/client.hpp"
#include "telemetry/event_bus.hpp"
#include "telemetry/service.hpp"
#include "telemetry/telemetry_soak.hpp"
#include "telemetry/wire.hpp"

using namespace tagbreathe;
using namespace tagbreathe::telemetry;

namespace {

core::PipelineEvent make_pipeline_event(
    std::uint64_t user, double t,
    core::PipelineEventKind kind = core::PipelineEventKind::RateUpdate,
    double rate = 12.0) {
  core::PipelineEvent e;
  e.kind = kind;
  e.user_id = user;
  e.time_s = t;
  e.rate_bpm = rate;
  e.reliable = true;
  e.health = core::SignalHealth::Ok;
  return e;
}

/// Hand-rolled wire peer: the client half of a channel, frame-level.
struct WirePeer {
  llrp::DuplexChannel channel;
  FrameParser parser;

  void send(const Frame& frame) {
    channel.write(llrp::Side::Client, encode_frame(frame));
  }
  std::vector<Frame> recv() {
    parser.feed(channel.read(llrp::Side::Client));
    std::vector<Frame> frames;
    while (auto f = parser.next()) frames.push_back(std::move(*f));
    return frames;
  }
};

// ---------------------------------------------------------------------------
// Wire protocol

TEST(WireProtocol, RoundTripsEveryFrameType) {
  SubscribeFrame sub;
  sub.filter = {FilterKind::Ward, 7};
  sub.policy = OverflowPolicy::CoalescePerUser;
  sub.resume_cursor = 41;
  HeartbeatFrame hb{12.5};
  SubAckFrame ack{9, 42, 5, 3};
  EventFrame ev;
  ev.event = make_event(1234, 3,
                        make_pipeline_event(17, 6.25,
                                            core::PipelineEventKind::ApneaAlert,
                                            0.0));
  GapFrame gap{100, 13};
  ShedFrame shed{ShedReason::HeartbeatTimeout};

  FrameParser parser;
  for (const Frame frame :
       {Frame{sub}, Frame{hb}, Frame{ack}, Frame{ev}, Frame{gap},
        Frame{shed}})
    parser.feed(encode_frame(frame));

  const auto got_sub = parser.next();
  ASSERT_TRUE(got_sub.has_value());
  const auto& s = std::get<SubscribeFrame>(*got_sub);
  EXPECT_EQ(s.filter.kind, FilterKind::Ward);
  EXPECT_EQ(s.filter.id, 7u);
  EXPECT_EQ(s.policy, OverflowPolicy::CoalescePerUser);
  EXPECT_EQ(s.resume_cursor, 41u);

  EXPECT_DOUBLE_EQ(std::get<HeartbeatFrame>(*parser.next()).client_time_s,
                   12.5);

  const auto a = std::get<SubAckFrame>(*parser.next());
  EXPECT_EQ(a.subscription_id, 9u);
  EXPECT_EQ(a.next_seq, 42u);
  EXPECT_EQ(a.replayed, 5u);
  EXPECT_EQ(a.gap, 3u);

  const auto e = std::get<EventFrame>(*parser.next()).event;
  EXPECT_EQ(e.seq, 1234u);
  EXPECT_EQ(e.shard, 3u);
  EXPECT_EQ(e.kind, core::PipelineEventKind::ApneaAlert);
  EXPECT_EQ(e.user_id, 17u);
  EXPECT_DOUBLE_EQ(e.time_s, 6.25);
  EXPECT_TRUE(e.reliable);

  const auto g = std::get<GapFrame>(*parser.next());
  EXPECT_EQ(g.next_seq, 100u);
  EXPECT_EQ(g.dropped, 13u);

  EXPECT_EQ(std::get<ShedFrame>(*parser.next()).reason,
            ShedReason::HeartbeatTimeout);
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(WireProtocol, ReassemblesAcrossArbitraryChunking) {
  std::vector<std::uint8_t> stream;
  constexpr std::size_t kFrames = 50;
  for (std::size_t i = 0; i < kFrames; ++i) {
    const auto bytes = encode_frame(
        EventFrame{make_event(i + 1, 0, make_pipeline_event(1, 0.1 * i))});
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  // One byte at a time — the cruellest chunking.
  FrameParser parser;
  std::size_t parsed = 0;
  std::uint64_t last_seq = 0;
  for (const std::uint8_t byte : stream) {
    parser.feed(std::span<const std::uint8_t>(&byte, 1));
    while (auto frame = parser.next()) {
      const auto& event = std::get<EventFrame>(*frame).event;
      EXPECT_EQ(event.seq, last_seq + 1);
      last_seq = event.seq;
      ++parsed;
    }
  }
  EXPECT_EQ(parsed, kFrames);
}

TEST(WireProtocol, RejectsMalformedStreams) {
  const auto expect_decode_error = [](std::vector<std::uint8_t> bytes) {
    FrameParser parser;
    parser.feed(bytes);
    EXPECT_THROW(
        {
          while (parser.next().has_value()) {
          }
        },
        llrp::DecodeError);
  };
  // Bad magic ('T' then wrong second byte — still classified framed).
  expect_decode_error({0x54, 0x00, 1, 1, 0, 0, 0, 0});
  // Bad version.
  expect_decode_error({0x54, 0x42, 99, 2, 0, 0, 0, 8, 0, 0, 0, 0, 0, 0, 0, 0});
  // Unknown frame type.
  expect_decode_error({0x54, 0x42, 1, 77, 0, 0, 0, 0});
  // Oversized payload length.
  expect_decode_error({0x54, 0x42, 1, 2, 0xFF, 0xFF, 0xFF, 0xFF});
  // Shed frame with an out-of-range reason.
  expect_decode_error({0x54, 0x42, 1, 6, 0, 0, 0, 1, 200});
  // Trailing byte after a valid Shed payload.
  expect_decode_error({0x54, 0x42, 1, 6, 0, 0, 0, 2, 0, 0});
  // Truncated: a valid prefix must simply wait for more bytes, not throw.
  FrameParser parser;
  const auto bytes = encode_frame(HeartbeatFrame{1.0});
  parser.feed(std::span<const std::uint8_t>(bytes.data(), bytes.size() - 1));
  EXPECT_FALSE(parser.next().has_value());
  parser.feed(std::span<const std::uint8_t>(&bytes.back(), 1));
  EXPECT_TRUE(parser.next().has_value());
}

TEST(WireProtocol, NamesAreStable) {
  EXPECT_STREQ(frame_type_name(FrameType::Subscribe), "Subscribe");
  EXPECT_STREQ(frame_type_name(FrameType::Shed), "Shed");
  EXPECT_STREQ(filter_kind_name(FilterKind::AlarmOnly), "AlarmOnly");
  EXPECT_STREQ(overflow_policy_name(OverflowPolicy::CoalescePerUser),
               "CoalescePerUser");
  EXPECT_STREQ(shed_reason_name(ShedReason::SlowConsumer), "SlowConsumer");
  EXPECT_STREQ(subscriber_state_name(SubscriberState::Lagging), "Lagging");
  EXPECT_STREQ(client_state_name(ClientState::Streaming), "Streaming");
}

// ---------------------------------------------------------------------------
// Configuration validation

TEST(TelemetryConfigValidation, RejectsNonsense) {
  {
    EventBusConfig c;
    c.queue_capacity = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    EventBusConfig c;
    c.queue_capacity = 1;  // derived lagging threshold degenerates
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    EventBusConfig c;
    c.lagging_above = 4;
    c.up_below = 4;  // no hysteresis
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    TelemetryServiceConfig c;
    c.max_events_per_pump = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    TelemetryServiceConfig c;
    c.heartbeat_timeout_s = -1.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    TelemetryClientConfig c;
    c.backoff_max_s = 0.1;  // below initial
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    TelemetryClientConfig c;
    c.backoff_jitter = 1.0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    SubscriberSoakConfig c;
    c.n_subscribers = 0;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    SubscriberSoakConfig c;
    c.fleet.event_tap = [](const fleet::FleetEvent&) {};
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  EXPECT_NO_THROW(EventBusConfig{}.validate());
  EXPECT_NO_THROW(TelemetryServiceConfig{}.validate());
  EXPECT_NO_THROW(TelemetryClientConfig{}.validate());
}

// ---------------------------------------------------------------------------
// EventBus: filters, conservation, overflow policies

std::uint32_t ward_of_pairs(std::uint64_t user) {
  return static_cast<std::uint32_t>((user - 1) / 2);
}

TEST(EventBus, FiltersEvaluateAtEnqueueTime) {
  EventBus bus(EventBusConfig{}, ward_of_pairs);
  const std::uint64_t all = bus.subscribe({FilterKind::All, 0},
                                          OverflowPolicy::DropOldest);
  const std::uint64_t user2 = bus.subscribe({FilterKind::User, 2},
                                            OverflowPolicy::DropOldest);
  const std::uint64_t ward1 = bus.subscribe({FilterKind::Ward, 1},
                                            OverflowPolicy::DropOldest);
  const std::uint64_t alarms = bus.subscribe({FilterKind::AlarmOnly, 0},
                                             OverflowPolicy::DropOldest);
  // Users 1..4: wards 0,0,1,1. One alarm for user 1.
  for (std::uint64_t u = 1; u <= 4; ++u)
    bus.publish(0, make_pipeline_event(u, 1.0));
  bus.publish(0, make_pipeline_event(1, 2.0,
                                     core::PipelineEventKind::ApneaAlert));

  EXPECT_EQ(bus.subscription_counters(all).published, 5u);
  EXPECT_EQ(bus.subscription_counters(user2).published, 1u);
  EXPECT_EQ(bus.subscription_counters(ward1).published, 2u);
  EXPECT_EQ(bus.subscription_counters(alarms).published, 1u);
  // Filter misses are counted, not enqueued: 4+3+4 = 11 misses.
  EXPECT_EQ(bus.counters().filtered_out, 11u);
  EXPECT_EQ(bus.counters().events_published, 5u);
}

TEST(EventBus, DropOldestConservesAndSurfacesGap) {
  EventBusConfig cfg;
  cfg.queue_capacity = 4;
  EventBus bus(cfg);
  const std::uint64_t id =
      bus.subscribe({FilterKind::All, 0}, OverflowPolicy::DropOldest);
  for (int i = 0; i < 10; ++i)
    bus.publish(0, make_pipeline_event(1, 0.1 * i));

  SubscriptionCounters c = bus.subscription_counters(id);
  EXPECT_EQ(c.published, 10u);
  EXPECT_EQ(c.dropped, 6u);
  EXPECT_EQ(bus.queued(id), 4u);
  EXPECT_EQ(c.published, c.delivered + c.dropped + c.coalesced + bus.queued(id));

  std::vector<TelemetryEvent> out;
  const EventBus::DrainResult dr = bus.drain(id, out, 100);
  EXPECT_EQ(dr.delivered, 4u);
  EXPECT_EQ(dr.gap_dropped, 6u);
  EXPECT_EQ(dr.gap_next_seq, 7u);  // seqs 1..6 were shed
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.front().seq, 7u);
  EXPECT_EQ(out.back().seq, 10u);

  c = bus.subscription_counters(id);
  EXPECT_EQ(c.published, c.delivered + c.dropped + c.coalesced);
}

TEST(EventBus, CoalescePerUserKeepsNewestRateAndSparesAlarms) {
  EventBusConfig cfg;
  cfg.queue_capacity = 2;
  EventBus bus(cfg);
  const std::uint64_t id =
      bus.subscribe({FilterKind::All, 0}, OverflowPolicy::CoalescePerUser);
  bus.publish(0, make_pipeline_event(1, 1.0, core::PipelineEventKind::RateUpdate, 10.0));
  bus.publish(0, make_pipeline_event(2, 1.1, core::PipelineEventKind::RateUpdate, 11.0));
  // Queue full. A newer rate for user 1 coalesces onto the stale one.
  bus.publish(0, make_pipeline_event(1, 2.0, core::PipelineEventKind::RateUpdate, 14.0));
  SubscriptionCounters c = bus.subscription_counters(id);
  EXPECT_EQ(c.coalesced, 1u);
  EXPECT_EQ(c.dropped, 0u);
  EXPECT_EQ(bus.queued(id), 2u);

  // An alarm never coalesces: with no coalescible same-user rate it
  // falls back to shedding the oldest.
  bus.publish(0, make_pipeline_event(3, 3.0, core::PipelineEventKind::ApneaAlert));
  c = bus.subscription_counters(id);
  EXPECT_EQ(c.coalesced, 1u);
  EXPECT_EQ(c.dropped, 1u);

  std::vector<TelemetryEvent> out;
  bus.drain(id, out, 100);
  ASSERT_EQ(out.size(), 2u);
  // Sequence order survived the coalesce (erase + re-append, not
  // overwrite in place).
  EXPECT_LT(out[0].seq, out[1].seq);
  EXPECT_EQ(out[1].kind, core::PipelineEventKind::ApneaAlert);
  c = bus.subscription_counters(id);
  EXPECT_EQ(c.published, c.delivered + c.dropped + c.coalesced);
}

TEST(EventBus, DisconnectPolicyShedsTheSubscriberOnOverflow) {
  EventBusConfig cfg;
  cfg.queue_capacity = 2;
  EventBus bus(cfg);
  const std::uint64_t id =
      bus.subscribe({FilterKind::All, 0}, OverflowPolicy::Disconnect);
  for (int i = 0; i < 3; ++i)
    bus.publish(0, make_pipeline_event(1, 0.1 * i));
  EXPECT_EQ(bus.state(id), SubscriberState::Shed);
  EXPECT_EQ(bus.counters().sheds[static_cast<std::size_t>(
                ShedReason::Overflow)],
            1u);
  const SubscriptionCounters c = bus.subscription_counters(id);
  EXPECT_EQ(c.published, 3u);
  EXPECT_EQ(c.published, c.delivered + c.dropped + c.coalesced);
  // A shed subscription no longer receives.
  bus.publish(0, make_pipeline_event(1, 9.0));
  EXPECT_EQ(bus.subscription_counters(id).published, 3u);
  std::vector<TelemetryEvent> out;
  const EventBus::DrainResult dr = bus.drain(id, out, 10);
  EXPECT_TRUE(dr.shed);
  EXPECT_EQ(dr.shed_reason, ShedReason::Overflow);
}

TEST(EventBus, LadderLagsRecoversAndShedsPersistentLaggards) {
  EventBusConfig cfg;
  cfg.queue_capacity = 8;
  cfg.lagging_above = 4;
  cfg.up_below = 2;
  cfg.shed_after_lagging_ticks = 3;
  EventBus bus(cfg);
  const std::uint64_t id =
      bus.subscribe({FilterKind::All, 0}, OverflowPolicy::DropOldest);
  EXPECT_EQ(bus.state(id), SubscriberState::Up);

  for (int i = 0; i < 5; ++i) bus.publish(0, make_pipeline_event(1, 0.1 * i));
  bus.tick();
  EXPECT_EQ(bus.state(id), SubscriberState::Lagging);

  // Drain below the hysteresis floor: recovers to Up.
  std::vector<TelemetryEvent> out;
  bus.drain(id, out, 4);
  bus.tick();
  EXPECT_EQ(bus.state(id), SubscriberState::Up);

  // Lag again and stay lagging: shed on the third consecutive tick.
  for (int i = 0; i < 6; ++i) bus.publish(0, make_pipeline_event(1, 1.0 + i));
  bus.tick();
  EXPECT_EQ(bus.state(id), SubscriberState::Lagging);
  bus.tick();
  EXPECT_EQ(bus.state(id), SubscriberState::Lagging);
  bus.tick();
  EXPECT_EQ(bus.state(id), SubscriberState::Shed);
  EXPECT_EQ(bus.counters().sheds[static_cast<std::size_t>(
                ShedReason::SlowConsumer)],
            1u);
  const SubscriptionCounters c = bus.subscription_counters(id);
  EXPECT_EQ(c.published, c.delivered + c.dropped + c.coalesced);
}

TEST(EventBus, ResumeCursorReplaysExactlyTheGap) {
  EventBusConfig cfg;
  cfg.replay_ring_capacity = 16;
  EventBus bus(cfg);
  for (int i = 1; i <= 10; ++i)
    bus.publish(0, make_pipeline_event(1, 0.1 * i));

  EventBus::ResumeResult rr;
  const std::uint64_t id = bus.subscribe(
      {FilterKind::All, 0}, OverflowPolicy::DropOldest, 4, &rr);
  EXPECT_EQ(rr.replayed, 6u);
  EXPECT_EQ(rr.gap, 0u);
  EXPECT_EQ(rr.next_seq, 11u);
  std::vector<TelemetryEvent> out;
  bus.drain(id, out, 100);
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out.front().seq, 5u);
  EXPECT_EQ(out.back().seq, 10u);
  const SubscriptionCounters c = bus.subscription_counters(id);
  EXPECT_EQ(c.replayed, 6u);
  EXPECT_EQ(c.published, c.delivered + c.dropped + c.coalesced);
}

TEST(EventBus, ResumeBeyondTheRingReportsTheIrrecoverableGap) {
  EventBusConfig cfg;
  cfg.replay_ring_capacity = 4;
  EventBus bus(cfg);
  for (int i = 1; i <= 10; ++i)
    bus.publish(0, make_pipeline_event(1, 0.1 * i));

  // Ring holds seqs 7..10; a client away since seq 2 lost 3..6.
  EventBus::ResumeResult rr;
  bus.subscribe({FilterKind::All, 0}, OverflowPolicy::DropOldest, 2, &rr);
  EXPECT_EQ(rr.replayed, 4u);
  EXPECT_EQ(rr.gap, 4u);
  EXPECT_EQ(bus.counters().gap_sequences, 4u);

  // Cursor ahead of the stream is clamped, not trusted.
  EventBus::ResumeResult ahead;
  bus.subscribe({FilterKind::All, 0}, OverflowPolicy::DropOldest, 999, &ahead);
  EXPECT_EQ(ahead.replayed, 0u);
  EXPECT_EQ(ahead.gap, 0u);
}

TEST(EventBus, UnsubscribeFreezesTheConservationLaw) {
  EventBus bus(EventBusConfig{});
  const std::uint64_t id =
      bus.subscribe({FilterKind::All, 0}, OverflowPolicy::DropOldest);
  for (int i = 0; i < 5; ++i) bus.publish(0, make_pipeline_event(1, 0.1 * i));
  std::vector<TelemetryEvent> out;
  bus.drain(id, out, 2);
  bus.unsubscribe(id);
  const SubscriptionCounters c = bus.subscription_counters(id);
  EXPECT_EQ(c.delivered, 2u);
  EXPECT_EQ(c.dropped, 3u);  // queued spilled into dropped on close
  EXPECT_EQ(c.published, c.delivered + c.dropped + c.coalesced);
  EXPECT_EQ(bus.live_subscriptions(), 0u);
  // The audit walk still sees the closed subscription.
  std::size_t walked = 0;
  bus.for_each_subscription([&](std::uint64_t, const FilterSpec&,
                                SubscriberState,
                                const SubscriptionCounters&,
                                std::size_t) { ++walked; });
  EXPECT_EQ(walked, 1u);
}

// ---------------------------------------------------------------------------
// TelemetryService: protocol lifecycle over real channels

TelemetryServiceConfig small_service(double heartbeat_timeout_s = 5.0,
                                     std::size_t queue_capacity = 64) {
  TelemetryServiceConfig cfg;
  cfg.bus.queue_capacity = queue_capacity;
  cfg.heartbeat_timeout_s = heartbeat_timeout_s;
  return cfg;
}

TEST(TelemetryService, SubscribesStreamsInOrder) {
  TelemetryService service(small_service());
  WirePeer peer;
  service.accept(peer.channel, 0.0);
  peer.send(SubscribeFrame{{FilterKind::All, 0},
                           OverflowPolicy::DropOldest, 0});
  service.pump(0.0);
  auto frames = peer.recv();
  ASSERT_EQ(frames.size(), 1u);
  const auto ack = std::get<SubAckFrame>(frames[0]);
  EXPECT_GT(ack.subscription_id, 0u);
  EXPECT_EQ(ack.next_seq, 1u);

  for (int i = 1; i <= 3; ++i)
    service.bus().publish(0, make_pipeline_event(1, 0.1 * i));
  peer.send(HeartbeatFrame{0.5});
  service.pump(0.5);
  frames = peer.recv();
  ASSERT_EQ(frames.size(), 3u);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(std::get<EventFrame>(frames[i]).event.seq,
              static_cast<std::uint64_t>(i + 1));
  EXPECT_EQ(service.counters().events_sent, 3u);
  EXPECT_EQ(service.counters().heartbeats, 1u);
}

TEST(TelemetryService, GapFramePrecedesEventsAfterOverload) {
  TelemetryService service(small_service(5.0, /*queue_capacity=*/2));
  WirePeer peer;
  service.accept(peer.channel, 0.0);
  peer.send(SubscribeFrame{{FilterKind::All, 0},
                           OverflowPolicy::DropOldest, 0});
  service.pump(0.0);
  peer.recv();  // SubAck

  for (int i = 1; i <= 5; ++i)
    service.bus().publish(0, make_pipeline_event(1, 0.1 * i));
  service.pump(0.5);
  const auto frames = peer.recv();
  ASSERT_EQ(frames.size(), 3u);
  const auto gap = std::get<GapFrame>(frames[0]);
  EXPECT_EQ(gap.dropped, 3u);   // seqs 1..3 shed
  EXPECT_EQ(gap.next_seq, 4u);
  EXPECT_EQ(std::get<EventFrame>(frames[1]).event.seq, 4u);
  EXPECT_EQ(std::get<EventFrame>(frames[2]).event.seq, 5u);
  EXPECT_EQ(service.counters().gap_frames_sent, 1u);
}

TEST(TelemetryService, HeartbeatTimeoutShedsSilentClients) {
  TelemetryService service(small_service(/*heartbeat_timeout_s=*/1.0));
  WirePeer peer;
  const std::uint64_t conn = service.accept(peer.channel, 0.0);
  peer.send(SubscribeFrame{{FilterKind::All, 0},
                           OverflowPolicy::DropOldest, 0});
  service.pump(0.0);
  peer.recv();

  // Heartbeat at 0.9 keeps it alive across the 1s deadline...
  peer.send(HeartbeatFrame{0.9});
  service.pump(0.9);
  EXPECT_TRUE(service.connection_open(conn));
  // ...then 2 s of silence kills it.
  service.pump(2.5);
  EXPECT_FALSE(service.connection_open(conn));
  const auto frames = peer.recv();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(std::get<ShedFrame>(frames[0]).reason,
            ShedReason::HeartbeatTimeout);
  EXPECT_EQ(service.counters().heartbeat_timeouts, 1u);
  EXPECT_EQ(service.bus().counters().sheds[static_cast<std::size_t>(
                ShedReason::HeartbeatTimeout)],
            1u);
}

TEST(TelemetryService, MalformedStreamShedsWithProtocolError) {
  TelemetryService service(small_service());
  WirePeer peer;
  const std::uint64_t conn = service.accept(peer.channel, 0.0);
  // First byte 'T' classifies as framed; the rest is garbage.
  const std::uint8_t junk[] = {0x54, 0x00, 1, 1, 0, 0, 0, 0};
  peer.channel.write(llrp::Side::Client, junk);
  service.pump(0.0);
  EXPECT_FALSE(service.connection_open(conn));
  const auto frames = peer.recv();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(std::get<ShedFrame>(frames[0]).reason, ShedReason::ProtocolError);
  EXPECT_EQ(service.counters().protocol_errors, 1u);
}

TEST(TelemetryService, DoubleSubscribeIsAProtocolError) {
  TelemetryService service(small_service());
  WirePeer peer;
  service.accept(peer.channel, 0.0);
  peer.send(SubscribeFrame{});
  service.pump(0.0);
  peer.recv();
  peer.send(SubscribeFrame{});
  service.pump(0.1);
  const auto frames = peer.recv();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(std::get<ShedFrame>(frames[0]).reason, ShedReason::ProtocolError);
}

TEST(TelemetryService, SurvivesFaultInjectedTransport) {
  // A FaultyChannel that corrupts server->client bytes: the client-side
  // parser throws, the client redials, and the service never wedges.
  TelemetryService service(small_service());
  llrp::DuplexChannel inner;
  llrp::FaultPlan plan;
  plan.bit_flip_prob = 0.02;
  plan.seed = 7;
  llrp::FaultyChannel channel(inner, plan);
  service.accept(channel, 0.0);
  channel.write(llrp::Side::Client,
                encode_frame(SubscribeFrame{{FilterKind::All, 0},
                                            OverflowPolicy::DropOldest, 0}));
  for (int i = 1; i <= 50; ++i)
    service.bus().publish(0, make_pipeline_event(1, 0.1 * i));
  // Whatever the fault injector does, pumping must neither throw nor
  // wedge; a corrupted Subscribe surfaces as a protocol-error shed.
  for (int p = 0; p < 10; ++p) EXPECT_NO_THROW(service.pump(0.1 * p));
  FrameParser client_parser;
  EXPECT_NO_THROW({
    try {
      client_parser.feed(channel.read(llrp::Side::Client));
      while (client_parser.next().has_value()) {
      }
    } catch (const llrp::DecodeError&) {
      // A client that sees corrupt bytes tears down and redials — the
      // exception is the contract, not a failure.
    }
  });
}

TEST(TelemetryService, ServesHttpScrapesNextToTheStream) {
  // Pure responder first.
  EXPECT_NE(handle_http_request("GET /healthz HTTP/1.1\r\n\r\n", nullptr)
                .find("200 OK"),
            std::string::npos);
  EXPECT_NE(handle_http_request("GET /metrics HTTP/1.1\r\n\r\n", nullptr)
                .find("503"),
            std::string::npos);
  EXPECT_NE(handle_http_request("GET /nope HTTP/1.1\r\n\r\n", nullptr)
                .find("404"),
            std::string::npos);
  EXPECT_NE(handle_http_request("POST /metrics HTTP/1.1\r\n\r\n", nullptr)
                .find("405"),
            std::string::npos);
  EXPECT_NE(handle_http_request("garbage", nullptr).find("400"),
            std::string::npos);

  // Through the service: same listener as the framed stream.
  obs::Observability hub;
  TelemetryService service(small_service());
  service.bind_observability(hub);
  service.bus().publish(0, make_pipeline_event(1, 1.0));

  llrp::DuplexChannel http;
  service.accept(http, 0.0);
  const std::string req = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  http.write(llrp::Side::Client,
             std::span<const std::uint8_t>(
                 reinterpret_cast<const std::uint8_t*>(req.data()),
                 req.size()));
  service.pump(0.0);
  const auto bytes = http.read(llrp::Side::Client);
  const std::string response(bytes.begin(), bytes.end());
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("telemetry_events_published_total 1"),
            std::string::npos);
  EXPECT_EQ(service.counters().http_requests, 1u);

  llrp::DuplexChannel json;
  service.accept(json, 1.0);
  const std::string jreq = "GET /metrics.json HTTP/1.1\r\n\r\n";
  json.write(llrp::Side::Client,
             std::span<const std::uint8_t>(
                 reinterpret_cast<const std::uint8_t*>(jreq.data()),
                 jreq.size()));
  service.pump(1.0);
  const auto jbytes = json.read(llrp::Side::Client);
  const std::string jresponse(jbytes.begin(), jbytes.end());
  EXPECT_NE(jresponse.find("application/json"), std::string::npos);
  EXPECT_NE(jresponse.find("\"counters\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// TelemetryClient: dial, stream, shed, jittered reconnect with resume

TEST(TelemetryClient, DialsStreamsAndResumesAfterShed) {
  TelemetryService service(small_service());
  std::vector<std::unique_ptr<llrp::DuplexChannel>> channels;
  TelemetryClientConfig cc;
  cc.heartbeat_period_s = 0.5;
  cc.seed = 3;
  TelemetryClient client(cc, [&](double now_s) -> llrp::ByteChannel* {
    channels.push_back(std::make_unique<llrp::DuplexChannel>());
    service.accept(*channels.back(), now_s);
    return channels.back().get();
  });

  client.step(0.0);  // dial + Subscribe
  service.pump(0.0);
  client.step(0.1);  // SubAck -> Streaming
  EXPECT_EQ(client.state(), ClientState::Streaming);
  ASSERT_GT(client.subscription_id(), 0u);

  for (int i = 1; i <= 3; ++i)
    service.bus().publish(0, make_pipeline_event(1, 0.1 * i));
  service.pump(0.2);
  client.step(0.3);
  EXPECT_EQ(client.counters().delivered, 3u);
  EXPECT_EQ(client.cursor(), 3u);

  // Server sheds the subscription; the client must learn, back off and
  // redial with its cursor — replaying only what it missed.
  service.bus().shed(client.subscription_id(), ShedReason::SlowConsumer);
  service.pump(0.4);
  client.step(0.5);
  EXPECT_EQ(client.state(), ClientState::Idle);
  EXPECT_EQ(client.counters().sheds_received, 1u);
  const double redial_at = client.next_dial_s();
  EXPECT_GT(redial_at, 0.5);

  for (int i = 4; i <= 5; ++i)
    service.bus().publish(0, make_pipeline_event(1, 0.1 * i));
  client.step(redial_at + 0.01);  // dial with resume_cursor=3
  service.pump(redial_at + 0.01);
  client.step(redial_at + 0.02);
  EXPECT_EQ(client.state(), ClientState::Streaming);
  EXPECT_EQ(client.counters().acks, 2u);
  EXPECT_EQ(client.counters().replayed, 2u);  // SubAck accounting
  service.pump(redial_at + 0.03);
  client.step(redial_at + 0.04);
  EXPECT_EQ(client.counters().delivered, 5u);
  EXPECT_EQ(client.cursor(), 5u);
  EXPECT_EQ(client.counters().ordering_violations, 0u);
}

TEST(TelemetryClient, BackoffIsExponentialAndJittered) {
  TelemetryClientConfig cc;
  cc.backoff_initial_s = 0.5;
  cc.backoff_max_s = 4.0;
  cc.backoff_jitter = 0.2;
  cc.seed = 11;
  TelemetryClient client(cc, [](double) -> llrp::ByteChannel* {
    return nullptr;  // every dial fails
  });

  double now = 0.0;
  double expected_base = 0.5;
  std::vector<double> delays;
  for (int attempt = 0; attempt < 5; ++attempt) {
    client.step(now);  // dial fails, schedules the next
    const double delay = client.next_dial_s() - now;
    delays.push_back(delay);
    EXPECT_GE(delay, expected_base * 0.8 - 1e-12);
    EXPECT_LE(delay, expected_base * 1.2 + 1e-12);
    expected_base = std::min(expected_base * 2.0, 4.0);
    now = client.next_dial_s();
  }
  EXPECT_EQ(client.counters().dials, 5u);
  // Jitter actually moves the delays off the deterministic base.
  bool any_off_base = false;
  double base = 0.5;
  for (const double d : delays) {
    if (std::abs(d - base) > 1e-9) any_off_base = true;
    base = std::min(base * 2.0, 4.0);
  }
  EXPECT_TRUE(any_off_base);
}

// ---------------------------------------------------------------------------
// Concurrency: publish races drains (the TSan gate)

TEST(TelemetryConcurrency, PublishRacesDrainsWithoutTearing) {
  EventBusConfig cfg;
  cfg.queue_capacity = 128;
  EventBus bus(cfg);
  const std::uint64_t a =
      bus.subscribe({FilterKind::All, 0}, OverflowPolicy::DropOldest);
  const std::uint64_t b =
      bus.subscribe({FilterKind::All, 0}, OverflowPolicy::CoalescePerUser);

  constexpr int kEvents = 20000;
  std::atomic<bool> done{false};
  std::thread publisher([&] {
    for (int i = 1; i <= kEvents; ++i)
      bus.publish(0, make_pipeline_event(1 + i % 4, 1e-4 * i));
    done.store(true);
  });
  std::uint64_t drained_a = 0, drained_b = 0;
  std::thread consumer_a([&] {
    std::vector<TelemetryEvent> out;
    while (!done.load() || bus.queued(a) > 0) {
      out.clear();
      drained_a += bus.drain(a, out, 64).delivered;
    }
  });
  std::thread consumer_b([&] {
    std::vector<TelemetryEvent> out;
    while (!done.load() || bus.queued(b) > 0) {
      out.clear();
      drained_b += bus.drain(b, out, 64).delivered;
    }
  });
  std::thread ticker([&] {
    while (!done.load()) bus.tick();
  });
  publisher.join();
  consumer_a.join();
  consumer_b.join();
  ticker.join();

  for (const std::uint64_t id : {a, b}) {
    const SubscriptionCounters c = bus.subscription_counters(id);
    EXPECT_EQ(c.published, static_cast<std::uint64_t>(kEvents));
    EXPECT_EQ(c.published,
              c.delivered + c.dropped + c.coalesced + bus.queued(id));
  }
  EXPECT_EQ(bus.subscription_counters(a).delivered, drained_a);
  EXPECT_EQ(bus.subscription_counters(b).delivered, drained_b);
}

// ---------------------------------------------------------------------------
// Subscriber soak: determinism + the 10k acceptance run

SubscriberSoakConfig small_soak() {
  SubscriberSoakConfig cfg;
  cfg.fleet.n_readers = 4;
  cfg.fleet.n_users = 16;
  cfg.fleet.duration_s = 16.0;
  cfg.fleet.read_rate_hz = 2.0;
  cfg.fleet.fleet.n_shards = 2;
  cfg.fleet.fleet.ingest.max_users = 0;
  cfg.fleet.fleet.pipeline.max_users = 0;
  cfg.fleet.fleet.pipeline.window_s = 8.0;
  cfg.fleet.fleet.pipeline.update_period_s = 1.0;
  cfg.fleet.fleet.pipeline.warmup_s = 2.0;
  cfg.fleet.record_event_log = false;
  cfg.n_subscribers = 200;
  cfg.users_per_ward = 4;
  cfg.service.heartbeat_timeout_s = 2.0;
  cfg.service.bus.queue_capacity = 32;
  cfg.service.bus.shed_after_lagging_ticks = 8;
  cfg.seed = 17;
  return cfg;
}

TEST(SubscriberSoak, DeterministicAcrossRuns) {
  const SubscriberSoakConfig cfg = small_soak();
  const SubscriberSoakReport x = run_subscriber_soak(cfg);
  const SubscriberSoakReport y = run_subscriber_soak(cfg);
  EXPECT_TRUE(x.ok()) << (x.violations.empty()
                              ? (x.fleet.violations.empty()
                                     ? ""
                                     : x.fleet.violations.front())
                              : x.violations.front());
  EXPECT_EQ(x.fleet.event_log_hash, y.fleet.event_log_hash);
  EXPECT_EQ(x.bus.events_published, y.bus.events_published);
  EXPECT_EQ(x.bus.fanout_enqueued, y.bus.fanout_enqueued);
  EXPECT_EQ(x.bus.fanout_dropped, y.bus.fanout_dropped);
  EXPECT_EQ(x.client_delivered, y.client_delivered);
  EXPECT_EQ(x.client_dials, y.client_dials);
}

TEST(SubscriberSoakAcceptance, TenThousandSubscribersAgainstChaosFleet) {
  SubscriberSoakConfig cfg;
  cfg.fleet.n_readers = 16;
  cfg.fleet.n_users = 64;
  cfg.fleet.duration_s = 30.0;
  cfg.fleet.read_rate_hz = 2.0;
  cfg.fleet.fleet.n_shards = 4;
  cfg.fleet.fleet.ingest.max_users = 0;
  cfg.fleet.fleet.pipeline.max_users = 0;
  cfg.fleet.fleet.pipeline.window_s = 12.0;
  cfg.fleet.fleet.pipeline.update_period_s = 4.0;
  cfg.fleet.fleet.pipeline.warmup_s = 4.0;
  cfg.fleet.record_event_log = false;
  // Chaos on the reader side too (the fleet acceptance scenario): the
  // fleet is being wounded while 10k subscribers watch.
  cfg.fleet.reader_chaos.push_back(
      core::ReaderChaosConfig::blackout(3, 6.0, 6.0, 3));
  cfg.fleet.reader_chaos.push_back(
      core::ReaderChaosConfig::flap(5, 2.0, 4.0, 3.0, 2, 5));
  cfg.n_subscribers = 10000;
  cfg.users_per_ward = 8;
  cfg.service.heartbeat_timeout_s = 2.0;
  cfg.service.bus.queue_capacity = 64;
  cfg.service.bus.shed_after_lagging_ticks = 12;
  cfg.service.max_inflight_bytes = 4 * 1024;
  cfg.slow_every = 7;
  cfg.flapping_every = 11;
  cfg.dead_every = 13;
  cfg.slow_stride = 6;
  cfg.flap_period_s = 10.0;
  cfg.flap_on_s = 4.0;  // 6 s silent > 2 s heartbeat timeout
  cfg.seed = 29;

  const SubscriberSoakReport report = run_subscriber_soak(cfg);
  for (const std::string& v : report.violations) ADD_FAILURE() << v;
  for (const std::string& v : report.fleet.violations) ADD_FAILURE() << v;
  EXPECT_TRUE(report.ok());

  // The fleet stream reached the bus intact and undisturbed.
  EXPECT_GT(report.fleet.events, 0u);
  EXPECT_EQ(report.bus.events_published, report.fleet.events);
  EXPECT_EQ(report.baseline_event_log_hash, report.fleet.event_log_hash);

  // The chaos population actually exercised the ladder: dead clients
  // were reaped, some consumers were shed, drops/gaps happened, and
  // flappers resumed with their cursors.
  EXPECT_GT(report.service.heartbeat_timeouts, 0u);
  EXPECT_GT(report.bus.fanout_dropped, 0u);
  EXPECT_GT(report.bus.resumes, 0u);
  EXPECT_GT(report.bus.replayed_events, 0u);
  EXPECT_GT(report.client_dials, cfg.n_subscribers);  // redials happened

  // Nobody saw out-of-order sequences, and every healthy subscriber
  // survived to the end.
  EXPECT_EQ(report.client_ordering_violations, 0u);
  EXPECT_GT(report.healthy_subscribers, 0u);
  EXPECT_EQ(report.healthy_streaming_at_end, report.healthy_subscribers);
}

}  // namespace
