// Unit + property tests: the Gen2 framed-slotted-ALOHA MAC.
#include <gtest/gtest.h>

#include <functional>

#include "common/rng.hpp"
#include "rfid/gen2_mac.hpp"

namespace tagbreathe::rfid {
namespace {

const auto kAlwaysDecode = [](std::size_t) { return 1.0; };

/// Runs the MAC for `duration_s` of simulated air time; returns per-tag
/// success counts.
std::vector<int> run_mac(Gen2Mac& mac, const std::vector<bool>& energised,
                         double duration_s, common::Rng& rng,
                         const std::function<double(std::size_t)>& decode =
                             kAlwaysDecode) {
  std::vector<int> reads(energised.size(), 0);
  double t = 0.0;
  while (t < duration_s) {
    const SlotResult slot = mac.step(energised, decode, rng);
    t += slot.duration_s;
    EXPECT_GT(slot.duration_s, 0.0);
    if (slot.kind == SlotKind::Success)
      ++reads[static_cast<std::size_t>(slot.tag_index)];
  }
  return reads;
}

TEST(Gen2Mac, SingleTagReadsAtCalibratedRate) {
  // Calibration target (Sec. IV-A): ~64 reads/s for one tag.
  Gen2Mac mac(1);
  common::Rng rng(1);
  const auto reads = run_mac(mac, {true}, 10.0, rng);
  EXPECT_GT(reads[0], 550);
  EXPECT_LT(reads[0], 800);
}

TEST(Gen2Mac, EveryTagGetsReadUnderContention) {
  constexpr std::size_t kTags = 20;
  Gen2Mac mac(kTags);
  common::Rng rng(2);
  const auto reads = run_mac(mac, std::vector<bool>(kTags, true), 10.0, rng);
  for (std::size_t i = 0; i < kTags; ++i)
    EXPECT_GT(reads[i], 10) << "tag " << i;
}

TEST(Gen2Mac, ThroughputSaturatesWithPopulation) {
  // Total reads/s should not collapse as tags are added (slotted ALOHA
  // with Q adaptation keeps efficiency up), and per-tag rate must fall.
  auto total_rate = [](std::size_t n, std::uint64_t seed) {
    Gen2Mac mac(n);
    common::Rng rng(seed);
    const auto reads =
        run_mac(mac, std::vector<bool>(n, true), 10.0, rng);
    int total = 0;
    for (int r : reads) total += r;
    return static_cast<double>(total) / 10.0;
  };
  const double r1 = total_rate(1, 3);
  const double r12 = total_rate(12, 4);
  const double r33 = total_rate(33, 5);
  EXPECT_GT(r12, r1);         // round overhead amortises
  EXPECT_GT(r33, 0.75 * r12); // no collapse
  EXPECT_LT(r33 / 33.0, r1);  // per-tag rate falls
}

TEST(Gen2Mac, FairnessAcrossTags) {
  constexpr std::size_t kTags = 8;
  Gen2Mac mac(kTags);
  common::Rng rng(6);
  const auto reads = run_mac(mac, std::vector<bool>(kTags, true), 20.0, rng);
  int lo = reads[0], hi = reads[0];
  for (int r : reads) {
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  EXPECT_GT(lo, hi / 2) << "unfair: " << lo << " vs " << hi;
}

TEST(Gen2Mac, RoundsCompleteAndFlagsReset) {
  Gen2Mac mac(3);
  common::Rng rng(7);
  run_mac(mac, {true, true, true}, 2.0, rng);
  // In 2 s at ~60 reads/s in rounds of 3, expect dozens of rounds.
  EXPECT_GT(mac.stats().rounds_completed, 20u);
  // Every round reads each tag exactly once -> successes ~ 3x rounds.
  EXPECT_NEAR(static_cast<double>(mac.stats().successes),
              3.0 * static_cast<double>(mac.stats().rounds_completed), 6.0);
}

TEST(Gen2Mac, UnenergisedTagsIdle) {
  Gen2Mac mac(2);
  common::Rng rng(8);
  const auto reads = run_mac(mac, {false, false}, 1.0, rng);
  EXPECT_EQ(reads[0] + reads[1], 0);
  EXPECT_GT(mac.stats().idles, 0u);
  EXPECT_EQ(mac.stats().successes, 0u);
}

TEST(Gen2Mac, PartialEnergisationOnlyReadsLiveTags) {
  Gen2Mac mac(4);
  common::Rng rng(9);
  const auto reads = run_mac(mac, {true, false, true, false}, 5.0, rng);
  EXPECT_GT(reads[0], 50);
  EXPECT_GT(reads[2], 50);
  EXPECT_EQ(reads[1], 0);
  EXPECT_EQ(reads[3], 0);
}

TEST(Gen2Mac, DecodeFailuresRetryUntilSuccess) {
  Gen2Mac mac(1);
  common::Rng rng(10);
  const auto reads =
      run_mac(mac, {true}, 10.0, rng, [](std::size_t) { return 0.3; });
  // Lower rate than clean, but the tag is still read repeatedly.
  EXPECT_GT(reads[0], 100);
  EXPECT_GT(mac.stats().failed_reads, mac.stats().successes);
}

TEST(Gen2Mac, ZeroDecodeProbabilityNeverSucceeds) {
  Gen2Mac mac(1);
  common::Rng rng(11);
  const auto reads =
      run_mac(mac, {true}, 1.0, rng, [](std::size_t) { return 0.0; });
  EXPECT_EQ(reads[0], 0);
  EXPECT_GT(mac.stats().failed_reads, 0u);
}

TEST(Gen2Mac, QStaysInBounds) {
  QConfig q;
  q.initial_q = 4.0;
  Gen2Mac mac(64, MacTimings{}, q);
  common::Rng rng(12);
  double t = 0.0;
  while (t < 5.0) {
    const auto slot = mac.step(std::vector<bool>(64, true), kAlwaysDecode, rng);
    t += slot.duration_s;
    EXPECT_GE(mac.current_q(), 0);
    EXPECT_LE(mac.current_q(), 15);
  }
  // With 64 tags Q should have adapted upward from 4.
  EXPECT_GE(mac.current_q(), 5);
}

TEST(Gen2Mac, StatsAreConsistent) {
  Gen2Mac mac(5);
  common::Rng rng(13);
  std::uint64_t slots = 0;
  double t = 0.0;
  while (t < 3.0) {
    t += mac.step(std::vector<bool>(5, true), kAlwaysDecode, rng).duration_s;
    ++slots;
  }
  const MacStats& s = mac.stats();
  EXPECT_EQ(s.queries + s.empties + s.collisions + s.successes +
                s.failed_reads + s.idles,
            slots);
  EXPECT_GT(s.collisions, 0u);  // 5 tags must collide sometimes
  EXPECT_GT(s.empties, 0u);
}

TEST(Gen2Mac, AbortFrameForcesRequery) {
  Gen2Mac mac(2);
  common::Rng rng(14);
  const std::vector<bool> all{true, true};
  // Enter a frame.
  auto first = mac.step(all, kAlwaysDecode, rng);
  EXPECT_EQ(first.kind, SlotKind::Query);
  mac.abort_frame();
  // Next step must be a new Query, not a slot of the aborted frame.
  const auto next = mac.step(all, kAlwaysDecode, rng);
  EXPECT_EQ(next.kind, SlotKind::Query);
}

TEST(Gen2Mac, ResetSessionClearsInventoriedFlags) {
  Gen2Mac mac(1);
  common::Rng rng(15);
  // Read the tag once.
  std::vector<int> reads = run_mac(mac, {true}, 0.05, rng);
  EXPECT_GE(reads[0], 1);
  const auto rounds_before = mac.stats().rounds_completed;
  mac.reset_session();
  // The tag is readable again without needing a round-complete reset.
  reads = run_mac(mac, {true}, 0.05, rng);
  EXPECT_GE(reads[0], 1);
  (void)rounds_before;
}

TEST(Gen2Mac, Validation) {
  EXPECT_THROW(Gen2Mac(0), std::invalid_argument);
  QConfig bad;
  bad.min_q = 5.0;
  bad.max_q = 3.0;
  EXPECT_THROW(Gen2Mac(1, MacTimings{}, bad), std::invalid_argument);
  Gen2Mac mac(2);
  common::Rng rng(16);
  std::vector<bool> wrong_size{true};
  EXPECT_THROW(mac.step(wrong_size, kAlwaysDecode, rng),
               std::invalid_argument);
}

TEST(Gen2Mac, SlotKindNames) {
  EXPECT_STREQ(slot_kind_name(SlotKind::Query), "query");
  EXPECT_STREQ(slot_kind_name(SlotKind::Success), "success");
  EXPECT_STREQ(slot_kind_name(SlotKind::Idle), "idle");
}

}  // namespace
}  // namespace tagbreathe::rfid
