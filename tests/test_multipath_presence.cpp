// Unit tests: two-ray ground multipath, dynamic tag presence, Welch PSD.
#include <gtest/gtest.h>

#include <memory>

#include "body/subject.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "common/stats.hpp"
#include "core/monitor.hpp"
#include "rfid/link_budget.hpp"
#include "rfid/reader.hpp"
#include "signal/spectrum.hpp"

namespace tagbreathe {
namespace {

constexpr double kFreq = 922.25e6;

// --- two-ray ground model ---------------------------------------------------

TEST(TwoRay, DisabledMatchesExponentModel) {
  rfid::LinkBudget link{rfid::LinkBudgetConfig{}};
  const common::Vec3 a{0.0, 0.0, 1.0};
  const common::Vec3 b{4.0, 0.0, 1.2};
  const double d = common::distance(a, b);
  EXPECT_DOUBLE_EQ(link.path_loss_db(a, b, kFreq),
                   link.path_loss_db(d, kFreq));
}

TEST(TwoRay, ProducesFadesAndAverageDecay) {
  rfid::LinkBudgetConfig cfg;
  cfg.two_ray_ground = true;
  rfid::LinkBudget link{cfg};
  const common::Vec3 a{0.0, 0.0, 1.0};

  // Scan distance: the floor-bounce delay is sub-metre, so fades cycle
  // slowly (a full constructive/destructive cycle every few metres).
  // Measure the deviation from the smooth free-space trend.
  rfid::LinkBudgetConfig fs_cfg;
  fs_cfg.path_loss_exponent = 2.0;
  rfid::LinkBudget free_space{fs_cfg};
  double residual_lo = 1e9, residual_hi = -1e9;
  for (double d = 1.0; d <= 8.0; d += 0.02) {
    const common::Vec3 b{d, 0.0, 1.2};
    const double residual = link.path_loss_db(a, b, kFreq) -
                            free_space.path_loss_db(
                                common::distance(a, b), kFreq);
    residual_lo = std::min(residual_lo, residual);
    residual_hi = std::max(residual_hi, residual);
  }
  // Interference with |G| = 0.6 spans roughly -4 dB (constructive) to
  // +8 dB (destructive) around free space.
  EXPECT_LT(residual_lo, -2.0);
  EXPECT_GT(residual_hi, 3.0);
}

TEST(TwoRay, FrequencySelectiveNearNulls) {
  // A sub-metre bounce delay makes the channel nearly flat across the
  // 26 MHz band in benign geometry, but near a destructive null small
  // frequency changes move the null — which is exactly why regulators'
  // frequency hopping rescues faded geometries (Sec. IV-A.3).
  rfid::LinkBudgetConfig cfg;
  cfg.two_ray_ground = true;
  rfid::LinkBudget link{cfg};
  const common::Vec3 a{0.0, 0.0, 1.0};

  // Find the deepest-fade distance in the working range.
  double worst_d = 1.0, worst_pl = -1e9;
  for (double d = 1.0; d <= 8.0; d += 0.01) {
    const double pl = link.path_loss_db(a, {d, 0.0, 1.2}, kFreq);
    if (pl > worst_pl) {
      worst_pl = pl;
      worst_d = d;
    }
  }
  double lo = 1e9, hi = -1e9;
  for (double f = 902e6; f < 928e6; f += 0.5e6) {
    const double pl = link.path_loss_db(a, {worst_d, 0.0, 1.2}, f);
    lo = std::min(lo, pl);
    hi = std::max(hi, pl);
  }
  EXPECT_GT(hi - lo, 0.3);  // hopping sees measurably different fades
}

TEST(TwoRay, EndToEndStillTracksBreathing) {
  // The pipeline must survive multipath: channel hopping averages the
  // per-channel fades exactly as the paper argues.
  body::SubjectConfig sc;
  sc.user_id = 1;
  sc.position = {3.0, 0.0, 0.0};
  sc.heading_rad = common::kPi;
  auto subject = std::make_unique<body::Subject>(
      sc, body::BreathingModel(body::MetronomeSchedule(12.0), {}));
  std::vector<std::unique_ptr<rfid::TagBehavior>> tags;
  for (int i = 0; i < 3; ++i)
    tags.push_back(std::make_unique<rfid::BodyTag>(
        rfid::Epc96::from_user_tag(1, static_cast<std::uint32_t>(i + 1)),
        subject.get(),
        body::Subject::all_sites()[static_cast<std::size_t>(i)]));
  rfid::ReaderConfig rc;
  rc.link.two_ray_ground = true;
  rc.seed = 31;
  rfid::ReaderSim sim(rc, std::move(tags));
  const auto reads = sim.run(120.0);
  ASSERT_GT(reads.size(), 2000u);

  core::BreathMonitor monitor;
  const auto analyses = monitor.analyze(reads);
  ASSERT_EQ(analyses.size(), 1u);
  EXPECT_NEAR(analyses[0].rate.rate_bpm, 12.0, 1.5);
}

// --- dynamic tag presence ------------------------------------------------------

TEST(Presence, StaticTagWindowLimitsReads) {
  body::SubjectConfig sc;
  sc.user_id = 1;
  sc.position = {2.0, 0.0, 0.0};
  sc.heading_rad = common::kPi;
  auto subject = std::make_unique<body::Subject>(
      sc, body::BreathingModel(body::MetronomeSchedule(10.0), {}));
  std::vector<std::unique_ptr<rfid::TagBehavior>> tags;
  tags.push_back(std::make_unique<rfid::BodyTag>(
      rfid::Epc96::from_user_tag(1, 1), subject.get(),
      body::TagSite::Chest));
  auto item = std::make_unique<rfid::StaticTag>(
      rfid::Epc96::from_user_tag(0xFFFF, 1), common::Vec3{1.5, 1.0, 0.8});
  item->set_presence_window(5.0, 10.0);
  tags.push_back(std::move(item));

  rfid::ReaderConfig rc;
  rc.seed = 32;
  rfid::ReaderSim sim(rc, std::move(tags));
  const auto reads = sim.run(15.0);

  double item_first = 1e9, item_last = -1.0;
  std::size_t item_reads = 0;
  for (const auto& r : reads) {
    if (r.epc.user_id() == 0xFFFF) {
      item_first = std::min(item_first, r.time_s);
      item_last = std::max(item_last, r.time_s);
      ++item_reads;
    }
  }
  ASSERT_GT(item_reads, 10u);
  EXPECT_GE(item_first, 5.0);
  EXPECT_LT(item_last, 10.0 + 0.05);
}

TEST(Presence, WindowValidation) {
  rfid::StaticTag tag(rfid::Epc96::from_user_tag(1, 1), {});
  EXPECT_TRUE(tag.present_at(-1e9));  // default: always present
  EXPECT_THROW(tag.set_presence_window(5.0, 5.0), std::invalid_argument);
}

// --- Welch PSD -------------------------------------------------------------------

TEST(Welch, LowerVarianceThanPeriodogramOnNoise) {
  common::Rng rng(7);
  std::vector<double> x(4096);
  for (auto& v : x) v = rng.normal();

  const auto plain = signal::periodogram(x, 20.0);
  const auto welch = signal::welch_psd(x, 20.0, 512);

  auto flatness = [](const std::vector<signal::SpectrumBin>& bins) {
    // Coefficient of variation of interior bin powers.
    std::vector<double> p;
    for (std::size_t k = 1; k + 1 < bins.size(); ++k)
      p.push_back(bins[k].power);
    const double m = common::mean(p);
    return m > 0.0 ? common::stddev(p) / m : 0.0;
  };
  EXPECT_LT(flatness(welch), 0.6 * flatness(plain));
}

TEST(Welch, PeakStaysPut) {
  std::vector<double> x(4096);
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(common::kTwoPi * 2.0 * static_cast<double>(i) / 20.0);
  const auto bins = signal::welch_psd(x, 20.0, 512);
  std::size_t best = 0;
  for (std::size_t k = 1; k < bins.size(); ++k)
    if (bins[k].power > bins[best].power) best = k;
  EXPECT_NEAR(bins[best].frequency_hz, 2.0, 0.05);
}

TEST(Welch, ShortInputDegradesToPeriodogram) {
  common::Rng rng(8);
  std::vector<double> x(100);
  for (auto& v : x) v = rng.normal();
  const auto welch = signal::welch_psd(x, 20.0, 256);
  const auto plain = signal::periodogram(x, 20.0);
  ASSERT_EQ(welch.size(), plain.size());
  for (std::size_t k = 0; k < welch.size(); ++k)
    EXPECT_DOUBLE_EQ(welch[k].power, plain[k].power);
  EXPECT_THROW(signal::welch_psd(x, 20.0, 4), std::invalid_argument);
}

}  // namespace
}  // namespace tagbreathe
