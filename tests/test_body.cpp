// Unit tests: breathing model, metronome schedules, apnea, subject
// geometry and sway.
#include <gtest/gtest.h>

#include "body/breathing_model.hpp"
#include "body/motion.hpp"
#include "body/subject.hpp"
#include "common/units.hpp"

namespace tagbreathe::body {
namespace {

TEST(Metronome, ConstantRate) {
  MetronomeSchedule m(12.0);
  EXPECT_DOUBLE_EQ(m.rate_bpm_at(0.0), 12.0);
  EXPECT_DOUBLE_EQ(m.rate_bpm_at(100.0), 12.0);
  // 12 bpm = 0.2 Hz: 60 s -> 12 cycles.
  EXPECT_NEAR(m.phase_cycles_at(60.0), 12.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.mean_rate_bpm(0.0, 60.0), 12.0);
}

TEST(Metronome, PiecewiseRatesAndContinuity) {
  MetronomeSchedule m({{0.0, 10.0}, {30.0, 20.0}, {60.0, 5.0}});
  EXPECT_DOUBLE_EQ(m.rate_bpm_at(10.0), 10.0);
  EXPECT_DOUBLE_EQ(m.rate_bpm_at(30.0), 20.0);
  EXPECT_DOUBLE_EQ(m.rate_bpm_at(1000.0), 5.0);
  // Phase continuous at the boundary.
  const double eps = 1e-6;
  EXPECT_NEAR(m.phase_cycles_at(30.0 - eps), m.phase_cycles_at(30.0 + eps),
              1e-4);
  // Mean over the first minute: 30 s at 10 + 30 s at 20 = 15 bpm mean.
  EXPECT_NEAR(m.mean_rate_bpm(0.0, 60.0), 15.0, 1e-9);
}

TEST(Metronome, PhaseIsMonotonic) {
  MetronomeSchedule m({{0.0, 8.0}, {20.0, 16.0}});
  double prev = -1.0;
  for (double t = 0.0; t < 60.0; t += 0.25) {
    const double p = m.phase_cycles_at(t);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(Metronome, Validation) {
  EXPECT_THROW(MetronomeSchedule(std::vector<RateSegment>{}),
               std::invalid_argument);
  EXPECT_THROW(MetronomeSchedule({{5.0, 10.0}}), std::invalid_argument);
  EXPECT_THROW(MetronomeSchedule({{0.0, 10.0}, {0.0, 12.0}}),
               std::invalid_argument);
  EXPECT_THROW(MetronomeSchedule({{0.0, -1.0}}), std::invalid_argument);
}

TEST(BreathExcursion, BoundedAndPeriodic) {
  const BreathShape shape{};
  for (double p = -2.0; p < 3.0; p += 0.01) {
    const double g = breath_excursion(p, shape);
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, 1.0);
    EXPECT_NEAR(g, breath_excursion(p + 1.0, shape), 1e-12);
  }
}

TEST(BreathExcursion, InhaleReachesPeakAtInhaleFraction) {
  BreathShape shape;
  shape.inhale_fraction = 0.4;
  shape.pause_fraction = 0.1;
  shape.harmonic_level = 0.0;
  EXPECT_NEAR(breath_excursion(0.0, shape), 0.0, 1e-12);
  EXPECT_NEAR(breath_excursion(0.4, shape), 1.0, 1e-9);
  // End-expiration pause sits at zero.
  EXPECT_NEAR(breath_excursion(0.95, shape), 0.0, 1e-12);
}

TEST(BreathExcursion, AsymmetryMakesInhaleFasterThanExhale) {
  BreathShape shape;
  shape.inhale_fraction = 0.3;
  shape.pause_fraction = 0.0;
  shape.harmonic_level = 0.0;
  // Slope magnitude early in inhale > slope early in exhale.
  const double di = breath_excursion(0.15, shape) - breath_excursion(0.14, shape);
  const double de = breath_excursion(0.64, shape) - breath_excursion(0.65, shape);
  EXPECT_GT(di, de);
}

TEST(BreathingModel, DisplacementScalesWithAmplitude) {
  BreathingModel model(MetronomeSchedule(12.0), BreathShape{});
  const double d1 = model.displacement_m(1.3, 0.005);
  const double d2 = model.displacement_m(1.3, 0.010);
  EXPECT_NEAR(d2, 2.0 * d1, 1e-12);
}

TEST(BreathingModel, ApneaFreezesDisplacement) {
  BreathingModel model(MetronomeSchedule(12.0), BreathShape{},
                       {{10.0, 5.0}});
  const double frozen = model.displacement_m(10.0, 0.01);
  for (double t = 10.1; t < 15.0; t += 0.5)
    EXPECT_NEAR(model.displacement_m(t, 0.01), frozen, 1e-9) << t;
  EXPECT_TRUE(model.in_apnea(12.0));
  EXPECT_FALSE(model.in_apnea(15.5));
  EXPECT_DOUBLE_EQ(model.true_rate_bpm(12.0), 0.0);
  EXPECT_DOUBLE_EQ(model.true_rate_bpm(16.0), 12.0);
}

TEST(BreathingModel, BreathingResumesAfterApnea) {
  BreathingModel with_apnea(MetronomeSchedule(12.0), BreathShape{},
                            {{10.0, 5.0}});
  BreathingModel without(MetronomeSchedule(12.0), BreathShape{});
  // After the apnea, the waveform continues from where it paused: the
  // displacement at t matches the no-apnea displacement at t - 5.
  for (double t = 16.0; t < 30.0; t += 0.7) {
    EXPECT_NEAR(with_apnea.displacement_m(t, 0.01),
                without.displacement_m(t - 5.0, 0.01), 1e-9)
        << t;
  }
}

TEST(BreathingModel, RejectsNegativeApnea) {
  EXPECT_THROW(BreathingModel(MetronomeSchedule(10.0), BreathShape{},
                              {{5.0, -1.0}}),
               std::invalid_argument);
}

// --- subject ------------------------------------------------------------

SubjectConfig base_config() {
  SubjectConfig cfg;
  cfg.user_id = 3;
  cfg.position = {4.0, 0.0, 0.0};
  cfg.heading_rad = common::kPi;  // facing the origin
  return cfg;
}

TEST(Subject, SiteHeightsOrdered) {
  Subject s(base_config(), BreathingModel(MetronomeSchedule(10.0), {}));
  EXPECT_GT(s.site_height(TagSite::Chest), s.site_height(TagSite::Mid));
  EXPECT_GT(s.site_height(TagSite::Mid), s.site_height(TagSite::Abdomen));
}

TEST(Subject, StandingIsTallerThanSitting) {
  auto cfg = base_config();
  Subject sitting(cfg, BreathingModel(MetronomeSchedule(10.0), {}));
  cfg.posture = Posture::Standing;
  Subject standing(cfg, BreathingModel(MetronomeSchedule(10.0), {}));
  EXPECT_GT(standing.site_height(TagSite::Chest),
            sitting.site_height(TagSite::Chest));
}

TEST(Subject, OrientationToAntenna) {
  auto cfg = base_config();
  Subject facing(cfg, BreathingModel(MetronomeSchedule(10.0), {}));
  EXPECT_NEAR(facing.orientation_to({0.0, 0.0, 1.0}), 0.0, 1e-9);

  cfg.heading_rad = common::kPi + common::deg_to_rad(60.0);
  Subject rotated(cfg, BreathingModel(MetronomeSchedule(10.0), {}));
  EXPECT_NEAR(common::rad_to_deg(rotated.orientation_to({0.0, 0.0, 1.0})),
              60.0, 1e-6);

  cfg.heading_rad = 0.0;  // back turned
  Subject back(cfg, BreathingModel(MetronomeSchedule(10.0), {}));
  EXPECT_NEAR(common::rad_to_deg(back.orientation_to({0.0, 0.0, 1.0})),
              180.0, 1e-6);
}

TEST(Subject, BreathingMovesTagTowardAntenna) {
  auto cfg = base_config();
  cfg.sway_amplitude_m = 0.0;
  Subject s(cfg, BreathingModel(MetronomeSchedule(10.0), {}));
  // Track the chest tag distance to the antenna over one breath (6 s):
  // it must vary by roughly the site amplitude.
  const common::Vec3 antenna{0.0, 0.0, 1.0};
  double dmin = 1e9, dmax = -1e9;
  for (double t = 0.0; t < 6.0; t += 0.05) {
    const double d = common::distance(antenna, s.tag_position(TagSite::Chest, t));
    dmin = std::min(dmin, d);
    dmax = std::max(dmax, d);
  }
  const double swing = dmax - dmin;
  EXPECT_GT(swing, 0.5 * s.site_amplitude(TagSite::Chest));
  EXPECT_LT(swing, 2.0 * s.site_amplitude(TagSite::Chest));
}

TEST(Subject, AllSitesMoveInPhase) {
  auto cfg = base_config();
  cfg.sway_amplitude_m = 0.0;
  Subject s(cfg, BreathingModel(MetronomeSchedule(10.0), {}));
  const common::Vec3 antenna{0.0, 0.0, 1.0};
  // Distances at peak inhale (t = 0.4*6 = 2.4 s) all smaller than at
  // end-expiration (t = 0).
  for (TagSite site : Subject::all_sites()) {
    const double d0 = common::distance(antenna, s.tag_position(site, 0.0));
    const double dpeak =
        common::distance(antenna, s.tag_position(site, 2.4));
    EXPECT_LT(dpeak, d0) << tag_site_name(site);
  }
}

TEST(Subject, ChestStyleShiftsAmplitudes) {
  auto cfg = base_config();
  cfg.chest_style = 1.0;  // pure chest breather
  Subject chesty(cfg, BreathingModel(MetronomeSchedule(10.0), {}));
  EXPECT_GT(chesty.site_amplitude(TagSite::Chest),
            chesty.site_amplitude(TagSite::Abdomen));
  cfg.chest_style = 0.0;  // pure abdominal breather
  Subject belly(cfg, BreathingModel(MetronomeSchedule(10.0), {}));
  EXPECT_GT(belly.site_amplitude(TagSite::Abdomen),
            belly.site_amplitude(TagSite::Chest));
}

TEST(Subject, LyingFacesUp) {
  auto cfg = base_config();
  cfg.posture = Posture::Lying;
  Subject s(cfg, BreathingModel(MetronomeSchedule(10.0), {}));
  EXPECT_NEAR(s.facing().z, 1.0, 1e-12);
  // All sites at bed height.
  for (TagSite site : Subject::all_sites())
    EXPECT_NEAR(s.site_height(site), 0.75, 1e-12);
  // An antenna directly overhead sees orientation ~0.
  const auto overhead = s.tag_position(TagSite::Mid, 0.0) +
                        common::Vec3{0.0, 0.0, 2.0};
  EXPECT_LT(common::rad_to_deg(s.orientation_to(overhead)), 10.0);
}

TEST(Subject, NamesAreStable) {
  EXPECT_STREQ(posture_name(Posture::Sitting), "sitting");
  EXPECT_STREQ(posture_name(Posture::Lying), "lying");
  EXPECT_STREQ(tag_site_name(TagSite::Chest), "chest");
  EXPECT_STREQ(tag_site_name(TagSite::Abdomen), "abdomen");
}

// --- sway ----------------------------------------------------------------

TEST(Sway, BoundedByAmplitude) {
  SwayProcess sway(0.002, 77);
  for (double t = 0.0; t < 100.0; t += 0.37) {
    const auto off = sway.offset(t);
    EXPECT_LE(off.norm(), 0.002 + 1e-12) << t;
    EXPECT_DOUBLE_EQ(off.z, 0.0);
  }
}

TEST(Sway, DeterministicPerSeed) {
  SwayProcess a(0.001, 5), b(0.001, 5), c(0.001, 6);
  const auto oa = a.offset(3.21);
  const auto ob = b.offset(3.21);
  const auto oc = c.offset(3.21);
  EXPECT_DOUBLE_EQ(oa.x, ob.x);
  EXPECT_DOUBLE_EQ(oa.y, ob.y);
  EXPECT_NE(oa.x, oc.x);
}

TEST(Sway, IsSlow) {
  // Sway frequencies are <= 0.15 Hz: over 0.1 s the offset barely moves.
  SwayProcess sway(0.002, 9);
  for (double t = 0.0; t < 20.0; t += 1.0) {
    const auto d = sway.offset(t + 0.1) - sway.offset(t);
    EXPECT_LT(d.norm(), 2.0e-4);
  }
}

}  // namespace
}  // namespace tagbreathe::body
