// Unit tests: INI parser and scenario (de)serialisation.
#include <gtest/gtest.h>

#include <sstream>

#include "common/ini.hpp"
#include "experiments/scenario_io.hpp"

namespace tagbreathe {
namespace {

using common::IniFile;

// --- ini ---------------------------------------------------------------

TEST(Ini, ParsesSectionsAndValues) {
  std::istringstream in(R"(
# comment
[alpha]
key = value
number = 42   ; trailing comment

[beta]
flag = true
)");
  const IniFile ini = IniFile::parse(in);
  ASSERT_EQ(ini.sections().size(), 2u);
  const auto* alpha = ini.find("alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->get_string("key", ""), "value");
  EXPECT_EQ(alpha->get_int("number", 0), 42);
  EXPECT_TRUE(ini.find("beta")->get_bool("flag", false));
  EXPECT_EQ(ini.find("gamma"), nullptr);
}

TEST(Ini, RepeatedSectionsKeepOrder) {
  std::istringstream in("[user]\na = 1\n[user]\na = 2\n");
  const IniFile ini = IniFile::parse(in);
  const auto users = ini.find_all("user");
  ASSERT_EQ(users.size(), 2u);
  EXPECT_EQ(users[0]->get_int("a", 0), 1);
  EXPECT_EQ(users[1]->get_int("a", 0), 2);
}

TEST(Ini, TypedGettersValidate) {
  std::istringstream in("[s]\nnum = 1.5\nbad = xyz\nflag = on\n");
  const IniFile ini = IniFile::parse(in);
  const auto* s = ini.find("s");
  EXPECT_DOUBLE_EQ(s->get_double("num", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(s->get_double("missing", 7.5), 7.5);
  EXPECT_THROW(s->get_double("bad", 0.0), std::runtime_error);
  EXPECT_THROW(s->get_int("num", 0), std::runtime_error);  // trailing .5
  EXPECT_TRUE(s->get_bool("flag", false));
  EXPECT_THROW(s->get_bool("bad", false), std::runtime_error);
}

TEST(Ini, SyntaxErrorsCarryLineNumbers) {
  std::istringstream unterminated("[oops\n");
  try {
    IniFile::parse(unterminated);
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
  std::istringstream orphan("key = 1\n");
  EXPECT_THROW(IniFile::parse(orphan), std::runtime_error);
  std::istringstream noeq("[s]\njust words\n");
  EXPECT_THROW(IniFile::parse(noeq), std::runtime_error);
}

// --- scenario io -------------------------------------------------------------

TEST(ScenarioIo, DefaultsWhenEmpty) {
  std::istringstream in("");
  const auto cfg = experiments::scenario_from_ini(in);
  EXPECT_DOUBLE_EQ(cfg.distance_m, 4.0);
  EXPECT_EQ(cfg.users.size(), 1u);
  EXPECT_DOUBLE_EQ(cfg.users[0].rate_bpm, 10.0);
}

TEST(ScenarioIo, ParsesFullScenario) {
  std::istringstream in(R"(
[scenario]
distance_m = 2.5
tags_per_user = 2
contending_tags = 7
duration_s = 45
seed = 99

[user]
rate_bpm = 14
posture = standing
orientation_deg = 30
apnea = 10:3, 20:4

[user]
schedule = 0:18, 30:12
posture = lying
)");
  const auto cfg = experiments::scenario_from_ini(in);
  EXPECT_DOUBLE_EQ(cfg.distance_m, 2.5);
  EXPECT_EQ(cfg.tags_per_user, 2);
  EXPECT_EQ(cfg.contending_tags, 7);
  EXPECT_EQ(cfg.seed, 99u);
  ASSERT_EQ(cfg.users.size(), 2u);
  EXPECT_DOUBLE_EQ(cfg.users[0].rate_bpm, 14.0);
  EXPECT_EQ(cfg.users[0].posture, body::Posture::Standing);
  ASSERT_EQ(cfg.users[0].apneas.size(), 2u);
  EXPECT_DOUBLE_EQ(cfg.users[0].apneas[1].start_s, 20.0);
  ASSERT_EQ(cfg.users[1].schedule.size(), 2u);
  EXPECT_DOUBLE_EQ(cfg.users[1].schedule[1].rate_bpm, 12.0);
  EXPECT_EQ(cfg.users[1].posture, body::Posture::Lying);
}

TEST(ScenarioIo, RejectsUnknownKeysAndBadValues) {
  std::istringstream typo("[scenario]\ndistancem = 4\n");
  EXPECT_THROW(experiments::scenario_from_ini(typo), std::runtime_error);

  std::istringstream bad_posture("[user]\nposture = floating\n");
  EXPECT_THROW(experiments::scenario_from_ini(bad_posture),
               std::runtime_error);

  std::istringstream bad_pairs("[user]\napnea = 10-3\n");
  EXPECT_THROW(experiments::scenario_from_ini(bad_pairs),
               std::runtime_error);

  // Values that fail Scenario's own validation are also rejected.
  std::istringstream bad_tags("[scenario]\ntags_per_user = 9\n");
  EXPECT_THROW(experiments::scenario_from_ini(bad_tags),
               std::invalid_argument);
}

TEST(ScenarioIo, RoundTrips) {
  experiments::ScenarioConfig cfg;
  cfg.distance_m = 3.25;
  cfg.contending_tags = 4;
  cfg.users[0].rate_bpm = 13.0;
  cfg.users[0].apneas = {{30.0, 6.0}};
  experiments::UserSpec second;
  second.schedule = {{0.0, 16.0}, {60.0, 9.0}};
  cfg.users.push_back(second);

  const std::string ini = experiments::scenario_to_ini(cfg);
  std::istringstream in(ini);
  const auto back = experiments::scenario_from_ini(in);
  EXPECT_DOUBLE_EQ(back.distance_m, cfg.distance_m);
  EXPECT_EQ(back.contending_tags, cfg.contending_tags);
  ASSERT_EQ(back.users.size(), 2u);
  EXPECT_DOUBLE_EQ(back.users[0].apneas[0].duration_s, 6.0);
  EXPECT_DOUBLE_EQ(back.users[1].schedule[1].rate_bpm, 9.0);
}

}  // namespace
}  // namespace tagbreathe
