// Unit tests: EPC codec (Fig. 9 ID scheme) and channel plans / hopping.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "rfid/channel_plan.hpp"
#include "rfid/epc.hpp"

namespace tagbreathe::rfid {
namespace {

// --- EPC ---------------------------------------------------------------

TEST(Epc, UserTagRoundTrip) {
  const Epc96 epc = Epc96::from_user_tag(0x0123456789ABCDEFULL, 0xDEADBEEF);
  EXPECT_EQ(epc.user_id(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(epc.tag_id(), 0xDEADBEEFu);
}

class EpcRoundTrip
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint32_t>> {
};

TEST_P(EpcRoundTrip, PreservesIds) {
  const auto [user, tag] = GetParam();
  const Epc96 epc = Epc96::from_user_tag(user, tag);
  EXPECT_EQ(epc.user_id(), user);
  EXPECT_EQ(epc.tag_id(), tag);
  // Hex round trip too.
  const auto parsed = Epc96::from_hex(epc.to_hex());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, epc);
}

INSTANTIATE_TEST_SUITE_P(
    Corners, EpcRoundTrip,
    ::testing::Values(std::pair<std::uint64_t, std::uint32_t>{0, 0},
                      std::pair<std::uint64_t, std::uint32_t>{1, 1},
                      std::pair<std::uint64_t, std::uint32_t>{~0ULL, ~0U},
                      std::pair<std::uint64_t, std::uint32_t>{42, 7},
                      std::pair<std::uint64_t, std::uint32_t>{
                          0x8000000000000000ULL, 0x80000000U}));

TEST(Epc, HexFormatting) {
  const Epc96 epc = Epc96::from_user_tag(0x0102030405060708ULL, 0x090A0B0C);
  EXPECT_EQ(epc.to_hex(), "0102030405060708090a0b0c");
}

TEST(Epc, HexParsingToleratesSeparators) {
  const auto a = Epc96::from_hex("01:02:03:04:05:06:07:08:09:0a:0b:0c");
  const auto b = Epc96::from_hex("0102 0304 0506 0708 090A 0B0C");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, *b);
}

TEST(Epc, HexParsingRejectsBadInput) {
  EXPECT_FALSE(Epc96::from_hex("zz").has_value());
  EXPECT_FALSE(Epc96::from_hex("0102").has_value());  // too short
  EXPECT_FALSE(
      Epc96::from_hex("0102030405060708090a0b0c0d").has_value());  // too long
  EXPECT_FALSE(Epc96::from_hex("0102030405060708090a0bxy").has_value());
}

TEST(Epc, HashDistinguishes) {
  Epc96Hash hash;
  const Epc96 a = Epc96::from_user_tag(1, 1);
  const Epc96 b = Epc96::from_user_tag(1, 2);
  const Epc96 c = Epc96::from_user_tag(2, 1);
  EXPECT_NE(hash(a), hash(b));
  EXPECT_NE(hash(a), hash(c));
  EXPECT_EQ(hash(a), hash(Epc96::from_user_tag(1, 1)));
}

TEST(Epc, Ordering) {
  EXPECT_LT(Epc96::from_user_tag(1, 1), Epc96::from_user_tag(1, 2));
  EXPECT_LT(Epc96::from_user_tag(1, 99), Epc96::from_user_tag(2, 0));
}

// --- channel plans ---------------------------------------------------------

TEST(ChannelPlan, PaperPlanMatchesPaper) {
  const auto plan = ChannelPlan::paper_plan();
  EXPECT_EQ(plan.channel_count(), 10u);
  EXPECT_NEAR(plan.dwell_s(), 0.2, 1e-12);
  // All carriers inside the 902-928 UHF band the paper quotes, 500 kHz
  // spaced.
  for (std::size_t i = 0; i < plan.channel_count(); ++i) {
    EXPECT_GT(plan.frequency_hz(i), 902e6);
    EXPECT_LT(plan.frequency_hz(i), 928e6);
    if (i > 0) {
      EXPECT_NEAR(plan.frequency_hz(i) - plan.frequency_hz(i - 1), 0.5e6,
                  1.0);
    }
  }
}

TEST(ChannelPlan, UsPlanHas50Channels) {
  const auto plan = ChannelPlan::us_plan();
  EXPECT_EQ(plan.channel_count(), 50u);
  EXPECT_NEAR(plan.frequency_hz(0), 902.75e6, 1.0);
  EXPECT_NEAR(plan.frequency_hz(49), 927.25e6, 1.0);
}

TEST(ChannelPlan, WavelengthConsistent) {
  const auto plan = ChannelPlan::paper_plan();
  for (std::size_t i = 0; i < plan.channel_count(); ++i)
    EXPECT_NEAR(plan.wavelength_m(i) * plan.frequency_hz(i), 299792458.0,
                1.0);
}

TEST(ChannelPlan, Validation) {
  EXPECT_THROW(ChannelPlan("x", {}, 0.2), std::invalid_argument);
  EXPECT_THROW(ChannelPlan("x", {915e6}, 0.0), std::invalid_argument);
  EXPECT_THROW(ChannelPlan("x", {-1.0}, 0.2), std::invalid_argument);
  const auto plan = ChannelPlan::paper_plan();
  EXPECT_THROW(plan.frequency_hz(10), std::out_of_range);
}

// --- hop schedule -------------------------------------------------------------

TEST(HopSchedule, DwellBoundariesRespected) {
  HopSchedule hops(ChannelPlan::paper_plan(), 3);
  for (double t = 0.0; t < 10.0; t += 0.05) {
    // Channel constant within a dwell.
    const double dwell_start = std::floor(t / 0.2) * 0.2;
    EXPECT_EQ(hops.channel_at(t), hops.channel_at(dwell_start + 1e-6));
  }
}

TEST(HopSchedule, VisitsEveryChannelEachEpoch) {
  HopSchedule hops(ChannelPlan::paper_plan(), 4);
  // One epoch = 10 dwells = 2 s; each channel exactly once.
  std::set<std::size_t> seen;
  for (int d = 0; d < 10; ++d) seen.insert(hops.channel_at(0.2 * d + 0.01));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(HopSchedule, EpochsReshuffle) {
  HopSchedule hops(ChannelPlan::paper_plan(), 5);
  std::vector<std::size_t> epoch0, epoch1;
  for (int d = 0; d < 10; ++d) {
    epoch0.push_back(hops.channel_at(0.2 * d + 0.01));
    epoch1.push_back(hops.channel_at(2.0 + 0.2 * d + 0.01));
  }
  EXPECT_NE(epoch0, epoch1);  // astronomically unlikely to coincide
}

TEST(HopSchedule, DeterministicPerSeed) {
  HopSchedule a(ChannelPlan::paper_plan(), 9);
  HopSchedule b(ChannelPlan::paper_plan(), 9);
  HopSchedule c(ChannelPlan::paper_plan(), 10);
  bool any_diff = false;
  for (double t = 0.0; t < 6.0; t += 0.2) {
    EXPECT_EQ(a.channel_at(t), b.channel_at(t));
    if (a.channel_at(t) != c.channel_at(t)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(HopSchedule, NextHopTimeStrictlyAhead) {
  HopSchedule hops(ChannelPlan::paper_plan(), 11);
  for (double t : {0.0, 0.05, 0.199, 0.2, 1.7}) {
    const double next = hops.next_hop_time(t);
    EXPECT_GT(next, t);
    // Lands on a dwell boundary (robust to fmod's representation edge).
    const double cycles = next / 0.2;
    EXPECT_NEAR(cycles, std::round(cycles), 1e-9);
  }
}

TEST(HopSchedule, NegativeTimeClamps) {
  HopSchedule hops(ChannelPlan::paper_plan(), 12);
  EXPECT_EQ(hops.channel_at(-5.0), hops.channel_at(0.0));
}

TEST(HopSchedule, FrequencyMatchesChannel) {
  HopSchedule hops(ChannelPlan::paper_plan(), 13);
  for (double t = 0.0; t < 4.0; t += 0.21) {
    const auto ch = hops.channel_at(t);
    EXPECT_DOUBLE_EQ(hops.frequency_at(t), hops.plan().frequency_hz(ch));
    EXPECT_DOUBLE_EQ(hops.wavelength_at(t), hops.plan().wavelength_m(ch));
  }
}

}  // namespace
}  // namespace tagbreathe::rfid
