// Unit tests: link budget and physical-layer measurement models.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "rfid/link_budget.hpp"
#include "rfid/phase_model.hpp"

namespace tagbreathe::rfid {
namespace {

constexpr double kFreq = 922.25e6;

// --- link budget ---------------------------------------------------------

TEST(LinkBudget, PathLossGrowsWithDistance) {
  LinkBudget link{LinkBudgetConfig{}};
  double prev = 0.0;
  for (double d : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double pl = link.path_loss_db(d, kFreq);
    EXPECT_GT(pl, prev);
    prev = pl;
  }
  // Free-space-like reference: ~31.7 dB at 1 m for lambda ~0.325 m.
  EXPECT_NEAR(link.path_loss_db(1.0, kFreq), 31.7, 0.5);
}

TEST(LinkBudget, PathLossExponentControlsSlope) {
  LinkBudgetConfig cfg;
  cfg.path_loss_exponent = 2.0;
  LinkBudget free_space{cfg};
  // Doubling distance adds 10*n*log10(2) ~ 6.02 dB for n = 2.
  const double delta = free_space.path_loss_db(4.0, kFreq) -
                       free_space.path_loss_db(2.0, kFreq);
  EXPECT_NEAR(delta, 6.02, 0.05);
}

TEST(LinkBudget, ForwardLimitedRangeIsMetres) {
  LinkBudget link{LinkBudgetConfig{}};
  // Tag powered at the paper's working ranges, dead far beyond them.
  EXPECT_TRUE(link.tag_powered(link.forward_power_dbm(4.0, kFreq, 0.0)));
  EXPECT_TRUE(link.tag_powered(link.forward_power_dbm(6.0, kFreq, 0.0)));
  EXPECT_FALSE(link.tag_powered(link.forward_power_dbm(30.0, kFreq, 0.0)));
}

TEST(LinkBudget, ReverseLinkRarelyBinds) {
  // At every distance where the tag powers up, the reader can decode:
  // passive UHF is forward-limited.
  LinkBudget link{LinkBudgetConfig{}};
  for (double d = 0.5; d < 12.0; d += 0.5) {
    const double fwd = link.forward_power_dbm(d, kFreq, 0.0);
    if (!link.tag_powered(fwd)) continue;
    EXPECT_TRUE(link.reader_decodes(link.backscatter_rssi_dbm(d, kFreq, 0.0)))
        << d;
  }
}

TEST(LinkBudget, SuccessProbabilityIsLogisticInMargin) {
  LinkBudget link{LinkBudgetConfig{}};
  EXPECT_NEAR(link.read_success_probability(0.0, 50.0), 0.5, 1e-9);
  EXPECT_GT(link.read_success_probability(6.0, 50.0), 0.97);
  EXPECT_LT(link.read_success_probability(-6.0, 50.0), 0.03);
  // The binding margin is the minimum of the two.
  EXPECT_DOUBLE_EQ(link.read_success_probability(10.0, -3.0),
                   link.read_success_probability(-3.0, 10.0));
}

TEST(LinkBudget, RssiQuantisedToHalfDb) {
  LinkBudget link{LinkBudgetConfig{}};
  EXPECT_DOUBLE_EQ(link.quantize_rssi(-57.26), -57.5);
  EXPECT_DOUBLE_EQ(link.quantize_rssi(-57.24), -57.0);
  LinkBudgetConfig raw;
  raw.rssi_quantization_db = 0.0;
  EXPECT_DOUBLE_EQ(LinkBudget{raw}.quantize_rssi(-57.26), -57.26);
}

TEST(LinkBudget, BodyAttenuationShape) {
  // Flat through 30 deg, ramping to ~9 dB at 90 deg, opaque past 120 deg.
  EXPECT_DOUBLE_EQ(LinkBudget::body_attenuation_db(0.0), 0.0);
  EXPECT_DOUBLE_EQ(
      LinkBudget::body_attenuation_db(common::deg_to_rad(30.0)), 0.0);
  const double at60 = LinkBudget::body_attenuation_db(common::deg_to_rad(60.0));
  const double at90 = LinkBudget::body_attenuation_db(common::deg_to_rad(90.0));
  EXPECT_GT(at60, 1.0);
  EXPECT_LT(at60, at90);
  EXPECT_NEAR(at90, 9.0, 0.5);
  EXPECT_GE(LinkBudget::body_attenuation_db(common::deg_to_rad(150.0)), 30.0);
  // Monotone non-decreasing over [0, 180].
  double prev = -1.0;
  for (double deg = 0.0; deg <= 180.0; deg += 5.0) {
    const double a = LinkBudget::body_attenuation_db(common::deg_to_rad(deg));
    EXPECT_GE(a, prev - 1e-9);
    prev = a;
  }
}

TEST(LinkBudget, WakeMarginWidensParticipation) {
  LinkBudget link{LinkBudgetConfig{}};
  const double sens = LinkBudgetConfig{}.tag_sensitivity_dbm;
  EXPECT_TRUE(link.tag_participates(sens - 5.0));
  EXPECT_FALSE(link.tag_participates(sens - 10.0));
  EXPECT_TRUE(link.tag_powered(sens));
  EXPECT_FALSE(link.tag_powered(sens - 1.0));
}

// --- phase model -----------------------------------------------------------

TEST(PhaseModel, IdealPhaseFollowsEq1) {
  PhaseModel model{PhaseModelConfig{}};
  const double lambda = common::wavelength_m(kFreq);
  // Moving the tag by lambda/2 leaves the phase unchanged (2d wraps a
  // full 2*pi).
  const double p0 = model.ideal_phase(2.0, lambda, 3, 42);
  const double p1 = model.ideal_phase(2.0 + lambda / 2.0, lambda, 3, 42);
  EXPECT_NEAR(p0, p1, 1e-9);
  // Moving by lambda/8 advances the phase by pi/2 (mod 2*pi).
  const double p2 = model.ideal_phase(2.0 + lambda / 8.0, lambda, 3, 42);
  EXPECT_NEAR(common::wrap_phase_pi(p2 - p0), common::kPi / 2.0, 1e-9);
}

TEST(PhaseModel, OffsetsDifferByChannelAndTag) {
  PhaseModel model{PhaseModelConfig{}};
  EXPECT_NE(model.phase_offset(0, 1), model.phase_offset(1, 1));
  EXPECT_NE(model.phase_offset(0, 1), model.phase_offset(0, 2));
  EXPECT_DOUBLE_EQ(model.phase_offset(4, 9), model.phase_offset(4, 9));
  // Different seeds change offsets.
  PhaseModelConfig other;
  other.offset_seed = 12345;
  EXPECT_NE(model.phase_offset(0, 1),
            PhaseModel{other}.phase_offset(0, 1));
}

TEST(PhaseModel, SigmaGrowsAsRssiFalls) {
  PhaseModel model{PhaseModelConfig{}};
  EXPECT_LT(model.phase_sigma(-40.0), model.phase_sigma(-70.0));
  EXPECT_LT(model.phase_sigma(-70.0), model.phase_sigma(-85.0));
  // High-SNR floor.
  EXPECT_NEAR(model.phase_sigma(-20.0),
              PhaseModelConfig{}.phase_sigma_floor_rad, 1e-3);
}

TEST(PhaseModel, MeasuredPhaseDistribution) {
  PhaseModel model{PhaseModelConfig{}};
  common::Rng rng(5);
  const double lambda = common::wavelength_m(kFreq);
  const double ideal = model.ideal_phase(3.0, lambda, 2, 7);
  common::RunningStats err;
  for (int i = 0; i < 5000; ++i) {
    const double measured =
        model.measure_phase(3.0, lambda, 2, 7, -55.0, rng);
    EXPECT_GE(measured, 0.0);
    EXPECT_LT(measured, common::kTwoPi + 1e-9);
    err.add(common::wrap_phase_pi(measured - ideal));
  }
  EXPECT_NEAR(err.mean(), 0.0, 0.01);
  EXPECT_NEAR(err.stddev(), model.phase_sigma(-55.0), 0.01);
}

TEST(PhaseModel, PhaseQuantisedTo12Bits) {
  PhaseModel model{PhaseModelConfig{}};
  common::Rng rng(6);
  const double lambda = common::wavelength_m(kFreq);
  const double quantum = PhaseModelConfig{}.phase_quantum_rad;
  for (int i = 0; i < 100; ++i) {
    const double p = model.measure_phase(2.0 + 0.01 * i, lambda, 1, 3,
                                         -50.0, rng);
    const double steps = p / quantum;
    EXPECT_NEAR(steps, std::round(steps), 1e-6);
  }
}

TEST(PhaseModel, DopplerSignConvention) {
  PhaseModel model{PhaseModelConfig{}};
  const double lambda = common::wavelength_m(kFreq);
  // Approaching (negative radial velocity) -> positive Doppler.
  EXPECT_GT(model.ideal_doppler(-0.1, lambda), 0.0);
  EXPECT_LT(model.ideal_doppler(0.1, lambda), 0.0);
  EXPECT_NEAR(model.ideal_doppler(-0.1, lambda), 2.0 * 0.1 / lambda, 1e-9);
}

TEST(PhaseModel, DopplerNoiseDominatesBreathingSpeeds) {
  // The paper's point about Eq. 2: dividing the intra-packet rotation by
  // 4*pi*dT amplifies noise far above breathing-scale Doppler.
  PhaseModel model{PhaseModelConfig{}};
  common::Rng rng(7);
  const double lambda = common::wavelength_m(kFreq);
  common::RunningStats reports;
  const double v_breath = 0.008;  // m/s chest wall speed
  for (int i = 0; i < 2000; ++i)
    reports.add(model.measure_doppler(v_breath, lambda, rng));
  const double true_doppler = model.ideal_doppler(v_breath, lambda);
  EXPECT_GT(reports.stddev(), 10.0 * std::abs(true_doppler));
  EXPECT_NEAR(reports.mean(), true_doppler, 0.2);
}

}  // namespace
}  // namespace tagbreathe::rfid
