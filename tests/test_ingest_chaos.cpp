// Ingest front-end and chaos-harness tests: backpressure policies at
// queue-full, validation & quarantine (duplicates, timestamp
// regressions, malformed/unknown EPCs), LRU admission control, the
// LLRP hand-off into the queue, and the seeded multi-user soak under
// the composite chaos scenario (determinism + invariants).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "body/subject.hpp"
#include "common/units.hpp"
#include "core/chaos.hpp"
#include "core/ingest.hpp"
#include "core/pipeline.hpp"
#include "llrp/session.hpp"
#include "soak_invariants.hpp"

namespace tagbreathe::core {
namespace {

TagRead make_read(double t, std::uint64_t user, std::uint32_t tag,
                  double phase = 1.0, std::uint8_t antenna = 1) {
  TagRead r;
  r.time_s = t;
  r.epc = rfid::Epc96::from_user_tag(user, tag);
  r.antenna_id = antenna;
  r.frequency_hz = 920.625e6;
  r.rssi_dbm = -55.0;
  r.phase_rad = phase;
  return r;
}

// --- config validation ------------------------------------------------------

TEST(IngestConfigValidation, RejectsNonsense) {
  IngestConfig cfg;
  cfg.queue_capacity = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = IngestConfig{};
  cfg.repair_skew_s = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = IngestConfig{};
  cfg.duplicate_window_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_NO_THROW(IngestConfig{}.validate());
}

TEST(PipelineConfigValidation, RejectsNonsense) {
  PipelineConfig cfg;
  cfg.window_s = -30.0;
  EXPECT_THROW(RealtimePipeline{cfg}, std::invalid_argument);
  cfg = PipelineConfig{};
  cfg.update_period_s = 0.0;
  EXPECT_THROW(RealtimePipeline{cfg}, std::invalid_argument);
  cfg = PipelineConfig{};
  cfg.warmup_s = cfg.window_s + 1.0;
  EXPECT_THROW(RealtimePipeline{cfg}, std::invalid_argument);
  cfg = PipelineConfig{};
  cfg.signal_loss_s = -1.0;
  EXPECT_THROW(RealtimePipeline{cfg}, std::invalid_argument);
  EXPECT_NO_THROW(RealtimePipeline{PipelineConfig{}});
}

TEST(ChaosConfigValidation, RejectsNonsense) {
  ChaosConfig cfg;
  cfg.dropout_prob = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ChaosConfig{};
  cfg.blackout_period_s = 10.0;
  cfg.blackout_duration_s = 10.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = ChaosConfig{};
  cfg.reorder_prob = 0.5;  // without a positive max delay
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_NO_THROW(ChaosConfig::composite(1).validate());
}

// --- enum name helpers are total -------------------------------------------

TEST(EnumNames, TotalOverUnknownValues) {
  EXPECT_STREQ(pipeline_event_name(static_cast<PipelineEventKind>(200)),
               "unknown-event");
  EXPECT_STREQ(backpressure_policy_name(static_cast<BackpressurePolicy>(99)),
               "unknown-policy");
  EXPECT_STREQ(enqueue_result_name(static_cast<EnqueueResult>(99)),
               "unknown-result");
  EXPECT_STREQ(quarantine_reason_name(static_cast<QuarantineReason>(99)),
               "unknown-reason");
  // Known values still name themselves.
  EXPECT_STREQ(pipeline_event_name(PipelineEventKind::ApneaAlert),
               "apnea-alert");
  EXPECT_STREQ(backpressure_policy_name(BackpressurePolicy::Coalesce),
               "coalesce");
  EXPECT_STREQ(quarantine_reason_name(QuarantineReason::DuplicateRead),
               "duplicate-read");
}

// --- queue backpressure at capacity ----------------------------------------

TEST(IngestQueue, DropOldestShedsTheOldestRead) {
  IngestQueue queue(4, BackpressurePolicy::DropOldest);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(queue.push(make_read(i, 1, 1)), EnqueueResult::Enqueued);
  EXPECT_EQ(queue.push(make_read(4.0, 1, 1)), EnqueueResult::DroppedOldest);
  EXPECT_EQ(queue.push(make_read(5.0, 1, 1)), EnqueueResult::DroppedOldest);

  std::vector<TagRead> out;
  EXPECT_EQ(queue.drain(out, 6.0), 4u);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out.front().time_s, 2.0);  // 0 and 1 were shed
  EXPECT_DOUBLE_EQ(out.back().time_s, 5.0);

  const auto counters = queue.counters();
  EXPECT_EQ(counters.enqueued, 6u);
  EXPECT_EQ(counters.shed_oldest, 2u);
  EXPECT_EQ(counters.drained, 4u);
  EXPECT_EQ(counters.peak_depth, 4u);
}

TEST(IngestQueue, CoalesceOverwritesSameTagInPlace) {
  IngestQueue queue(2, BackpressurePolicy::Coalesce);
  queue.push(make_read(0.0, 1, 1, 0.1));
  queue.push(make_read(0.1, 1, 2, 0.2));
  // Full; same tag (1,2) => coalesced in place, queue order preserved.
  EXPECT_EQ(queue.push(make_read(0.2, 1, 2, 0.9)), EnqueueResult::Coalesced);
  // Full; no queued read of tag (2,7) => falls back to shedding oldest.
  EXPECT_EQ(queue.push(make_read(0.3, 2, 7)), EnqueueResult::DroppedOldest);

  std::vector<TagRead> out;
  queue.drain(out, 1.0);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].phase_rad, 0.9);  // the coalesced survivor
  EXPECT_EQ(out[1].epc.user_id(), 2u);

  const auto counters = queue.counters();
  EXPECT_EQ(counters.coalesced, 1u);
  EXPECT_EQ(counters.shed_oldest, 1u);
}

TEST(IngestQueue, BlockPolicyRefusesTryPushAndWaitsOnPush) {
  IngestQueue queue(2, BackpressurePolicy::Block);
  queue.push(make_read(0.0, 1, 1));
  queue.push(make_read(0.1, 1, 1));
  EXPECT_EQ(queue.try_push(make_read(0.2, 1, 1)), EnqueueResult::WouldBlock);
  EXPECT_EQ(queue.counters().would_block, 1u);

  // A blocking producer parks until the consumer drains.
  EnqueueResult result = EnqueueResult::Closed;
  std::thread producer(
      [&] { result = queue.push(make_read(0.3, 1, 1)); });
  while (queue.counters().blocked_pushes == 0) std::this_thread::yield();
  std::vector<TagRead> out;
  queue.drain(out, 1.0);
  producer.join();
  EXPECT_EQ(result, EnqueueResult::Enqueued);
  EXPECT_EQ(queue.size(), 1u);

  // close() wakes and refuses late producers.
  queue.close();
  EXPECT_EQ(queue.push(make_read(0.4, 1, 1)), EnqueueResult::Closed);
}

TEST(IngestQueue, RecordsStreamTimeLatency) {
  IngestQueue queue(8, BackpressurePolicy::DropOldest);
  queue.push(make_read(0.0, 1, 1), /*now_s=*/1.0);
  queue.push(make_read(0.0, 1, 1), /*now_s=*/2.5);
  std::vector<TagRead> out;
  queue.drain(out, /*now_s=*/3.0);
  const auto counters = queue.counters();
  EXPECT_EQ(counters.queue_delay.samples, 2u);
  EXPECT_DOUBLE_EQ(counters.queue_delay.max_s, 2.0);
  EXPECT_DOUBLE_EQ(counters.queue_delay.mean_s(), (2.0 + 0.5) / 2.0);
}

// --- validation & quarantine ------------------------------------------------

TEST(ReadValidator, SuppressesDuplicateDeliveries) {
  ReadValidator validator{IngestConfig{}};
  TagRead read = make_read(1.0, 1, 1, 2.5);
  TagRead dup = read;
  EXPECT_TRUE(validator.admit(read).admitted);
  const auto verdict = validator.admit(dup);
  EXPECT_FALSE(verdict.admitted);
  EXPECT_EQ(verdict.reason, QuarantineReason::DuplicateRead);
  // Same instant, different phase (a genuine second read) is kept.
  TagRead other = make_read(1.0, 1, 1, 2.6);
  EXPECT_TRUE(validator.admit(other).admitted);
  EXPECT_EQ(validator.counters().admitted, 2u);
  EXPECT_EQ(validator.counters()
                .quarantined[static_cast<std::size_t>(
                    QuarantineReason::DuplicateRead)],
            1u);
}

TEST(ReadValidator, RepairsSmallRegressionsRejectsLargeOnes) {
  IngestConfig cfg;
  cfg.repair_skew_s = 0.25;
  ReadValidator validator(cfg);
  TagRead a = make_read(10.0, 1, 1, 0.3);
  EXPECT_TRUE(validator.admit(a).admitted);

  TagRead jitter = make_read(9.9, 1, 2, 0.4);  // within the repair band
  const auto repaired = validator.admit(jitter);
  EXPECT_TRUE(repaired.admitted);
  EXPECT_TRUE(repaired.repaired);
  EXPECT_DOUBLE_EQ(jitter.time_s, 10.0);  // clamped to the frontier
  EXPECT_EQ(validator.counters().repaired_timestamps, 1u);

  TagRead step = make_read(5.0, 1, 3, 0.5);  // clock stepped way back
  const auto rejected = validator.admit(step);
  EXPECT_FALSE(rejected.admitted);
  EXPECT_EQ(rejected.reason, QuarantineReason::TimestampRegression);
  EXPECT_DOUBLE_EQ(validator.last_admitted_s(), 10.0);
}

TEST(ReadValidator, QuarantinesMalformedAndUnknownAndNonFinite) {
  IngestConfig cfg;
  cfg.monitored_users = {1, 2};
  ReadValidator validator(cfg);

  TagRead zero_user = make_read(0.0, 0, 1);
  EXPECT_EQ(validator.admit(zero_user).reason,
            QuarantineReason::MalformedEpc);
  TagRead zero_tag = make_read(0.0, 1, 0);
  EXPECT_EQ(validator.admit(zero_tag).reason, QuarantineReason::MalformedEpc);

  TagRead stranger = make_read(0.0, 9, 1);
  EXPECT_EQ(validator.admit(stranger).reason, QuarantineReason::UnknownUser);

  TagRead nan_phase = make_read(0.0, 1, 1);
  nan_phase.phase_rad = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(validator.admit(nan_phase).reason,
            QuarantineReason::NonFiniteField);

  EXPECT_EQ(validator.counters().admitted, 0u);
  EXPECT_EQ(validator.counters().quarantined_total, 4u);
}

TEST(ReadValidator, LruEvictionFollowsRecency) {
  IngestConfig cfg;
  cfg.max_users = 2;
  ReadValidator validator(cfg);
  TagRead r1 = make_read(0.0, 1, 1, 0.1);
  TagRead r2 = make_read(0.1, 2, 1, 0.2);
  TagRead r1b = make_read(0.2, 1, 1, 0.3);  // touch user 1
  TagRead r3 = make_read(0.3, 3, 1, 0.4);   // must evict user 2 (LRU)
  TagRead r4 = make_read(0.4, 4, 1, 0.5);   // must evict user 1
  EXPECT_TRUE(validator.admit(r1).admitted);
  EXPECT_TRUE(validator.admit(r2).admitted);
  EXPECT_TRUE(validator.admit(r1b).admitted);
  EXPECT_TRUE(validator.admit(r3).admitted);
  const auto first = validator.take_evicted_users();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0], 2u);
  EXPECT_TRUE(validator.admit(r4).admitted);
  const auto second = validator.take_evicted_users();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], 1u);
  EXPECT_EQ(validator.tracked_users(), 2u);
  EXPECT_EQ(validator.counters().users_evicted, 2u);
}

TEST(Pipeline, AdmissionCapEvictsLeastRecentlyReadUser) {
  PipelineConfig cfg;
  cfg.max_users = 2;
  RealtimePipeline pipeline(cfg);
  pipeline.push(make_read(0.0, 1, 1));
  pipeline.push(make_read(0.5, 2, 1));
  pipeline.push(make_read(1.0, 1, 1));  // user 1 now the freshest
  pipeline.push(make_read(1.5, 3, 1));  // evicts user 2
  EXPECT_EQ(pipeline.tracked_users(), 2u);
  EXPECT_EQ(pipeline.users_evicted(), 1u);
  EXPECT_EQ(pipeline.health(2), SignalHealth::Lost);  // forgotten
}

// --- front-end end-to-end ----------------------------------------------------

TEST(IngestFrontEnd, FeedsPipelineMonotonicValidatedReads) {
  PipelineConfig pcfg;
  RealtimePipeline pipeline(pcfg);
  IngestConfig icfg;
  icfg.monitored_users = {1};
  IngestFrontEnd frontend(icfg, pipeline);

  // Jittered, duplicated and corrupt deliveries.
  frontend.offer(make_read(1.00, 1, 1, 0.10));
  frontend.offer(make_read(1.00, 1, 1, 0.10));  // duplicate
  frontend.offer(make_read(0.95, 1, 2, 0.20));  // jitter within repair band
  frontend.offer(make_read(1.10, 7, 1, 0.30));  // unknown user
  TagRead bad = make_read(1.20, 1, 1, 0.40);
  bad.doppler_hz = std::numeric_limits<double>::infinity();
  frontend.offer(bad);
  EXPECT_EQ(frontend.pump(2.0), 2u);

  const auto& v = frontend.validation();
  EXPECT_EQ(v.admitted, 2u);
  EXPECT_EQ(v.repaired_timestamps, 1u);
  EXPECT_EQ(v.quarantined_total, 3u);
  EXPECT_DOUBLE_EQ(pipeline.now_s(), 2.0);
  const auto q = frontend.queue_counters();
  EXPECT_EQ(q.enqueued, 5u);
  EXPECT_EQ(q.drained, 5u);
}

TEST(SupervisorHandoff, RoutesLlrpReadsThroughIngestQueue) {
  // Full wire path: reader sim -> LLRP frames -> client decode ->
  // bounded queue -> validation -> pipeline.
  body::SubjectConfig scfg;
  scfg.user_id = 1;
  scfg.position = {3.0, 0.0, 0.0};
  scfg.heading_rad = common::kPi;
  auto subject = std::make_unique<body::Subject>(
      scfg, body::BreathingModel(body::MetronomeSchedule(12.0), {}));
  std::vector<std::unique_ptr<rfid::TagBehavior>> tags;
  for (int i = 0; i < 3; ++i) {
    tags.push_back(std::make_unique<rfid::BodyTag>(
        rfid::Epc96::from_user_tag(1, static_cast<std::uint32_t>(i + 1)),
        subject.get(),
        body::Subject::all_sites()[static_cast<std::size_t>(i)]));
  }
  rfid::ReaderConfig rc;
  rc.seed = 77;

  llrp::SupervisedSessionConfig cfg;
  cfg.faults = llrp::FaultPlan::none();
  llrp::SupervisedSession session(cfg,
                                  std::make_unique<rfid::ReaderSim>(
                                      rc, std::move(tags)));

  PipelineConfig pcfg;
  RealtimePipeline pipeline(pcfg);
  IngestConfig icfg;
  icfg.monitored_users = {1};
  IngestFrontEnd frontend(icfg, pipeline);
  session.supervisor().route_reads_to(frontend.queue());

  for (int step = 0; step < 40; ++step) {
    session.advance(0.25);
    frontend.pump(session.now_s());
  }

  EXPECT_EQ(session.supervisor().state(), llrp::SessionState::Streaming);
  EXPECT_GT(frontend.validation().admitted, 100u);
  EXPECT_EQ(frontend.validation()
                .quarantined[static_cast<std::size_t>(
                    QuarantineReason::UnknownUser)],
            0u);
  EXPECT_GT(pipeline.now_s(), 9.0);
}

// --- chaos soak ---------------------------------------------------------------

SoakConfig acceptance_soak(std::uint64_t seed) {
  SoakConfig cfg;
  cfg.n_users = 3;
  cfg.tags_per_user = 2;
  cfg.duration_s = 600.0;  // the 10-minute acceptance scenario
  cfg.read_rate_hz = 8.0;
  cfg.pipeline.window_s = 20.0;
  cfg.pipeline.warmup_s = 8.0;
  cfg.pipeline.max_reads_per_stream = 4096;
  cfg.ingest.max_users = 3;
  cfg.ingest.queue_capacity = 1024;
  cfg.chaos = ChaosConfig::composite(seed);
  return cfg;
}

TEST(ChaosSoak, CompositeTenMinuteSoakHoldsInvariants) {
  const SoakConfig cfg = acceptance_soak(0xD15EA5E);
  const SoakReport report = run_soak(cfg);
  testutil::expect_no_violations(report.violations);
  testutil::expect_queue_conservation(report.queue, cfg.ingest.queue_capacity);
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.events, 100u);
  EXPECT_LE(report.peak_tracked_users, 3u);
  // Every chaos mode actually fired.
  EXPECT_GT(report.chaos.dropped, 0u);
  EXPECT_GT(report.chaos.blackout_dropped, 0u);
  EXPECT_GT(report.chaos.duplicated, 0u);
  EXPECT_GT(report.chaos.reordered, 0u);
  EXPECT_GT(report.chaos.skewed, 0u);
  EXPECT_GT(report.chaos.corrupted, 0u);
  EXPECT_GT(report.chaos.burst_injected, 0u);
  // ...and the admission layer caught dirty reads of every class.
  EXPECT_GT(report.validation.repaired_timestamps, 0u);
  EXPECT_GT(report.validation.quarantined_total, 0u);
  EXPECT_GT(report.signal_lost_events, 0u);
  EXPECT_GT(report.signal_recovered_events, 0u);
}

TEST(ChaosSoak, SameSeedSameEventLog) {
  const SoakReport a = run_soak(acceptance_soak(42));
  const SoakReport b = run_soak(acceptance_soak(42));
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  ASSERT_EQ(a.event_log.size(), b.event_log.size());
  EXPECT_EQ(a.event_log, b.event_log);
  EXPECT_EQ(a.validation.admitted, b.validation.admitted);
  EXPECT_EQ(a.queue.enqueued, b.queue.enqueued);
}

TEST(ChaosSoak, DifferentSeedsDiverge) {
  SoakConfig cfg = acceptance_soak(1);
  cfg.duration_s = 90.0;
  const SoakReport a = run_soak(cfg);
  cfg.chaos.seed = 2;
  const SoakReport b = run_soak(cfg);
  EXPECT_NE(a.event_log, b.event_log);
}

TEST(ChaosSoak, BurstOverloadIsBoundedByTheQueue) {
  SoakConfig cfg = acceptance_soak(7);
  cfg.duration_s = 120.0;
  cfg.ingest.queue_capacity = 64;  // tiny queue under burst pressure
  cfg.ingest.policy = BackpressurePolicy::Coalesce;
  const SoakReport report = run_soak(cfg);
  testutil::expect_no_violations(report.violations);
  testutil::expect_queue_conservation(report.queue, cfg.ingest.queue_capacity);
  EXPECT_LE(report.queue.peak_depth, 64u);
}

}  // namespace
}  // namespace tagbreathe::core
