// SIMD DSP back-end tests: runtime dispatch (probe, env override, test
// override, first-call race under TSan), bit-exact vector-vs-scalar
// kernel equivalence (butterflies, Bluestein pointwise products, Eq. 3
// phase deltas with out-of-range lanes), batch-vs-single identity of
// the fft_many / fft_bandlimit_many / extract_many sweeps, the
// zero-allocation gate on the warm batched steady state (counting
// operator-new hook), cache-line alignment of the per-slot scratch
// arenas, and the batched-vs-unbatched / scalar-vs-vector pipeline
// event-log byte-identity gates.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <complex>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <random>
#include <thread>
#include <vector>

#include "common/units.hpp"
#include "core/breath_extractor.hpp"
#include "core/chaos.hpp"
#include "core/monitor.hpp"
#include "core/pipeline.hpp"
#include "obs/observability.hpp"
#include "signal/fft.hpp"
#include "signal/simd/dispatch.hpp"
#include "signal/simd/kernels.hpp"
#include "signal/spectrum.hpp"

// --- counting operator-new hook ---------------------------------------------
// Replaces the global allocation functions for this binary so the
// batched steady-state zero-allocation claim is asserted, not assumed.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace tagbreathe {
namespace {

using signal::cdouble;
using signal::FftDirection;
using signal::FftPlan;
using signal::FftScratch;
using signal::simd::DspKernels;
using signal::simd::SimdLevel;

/// The vector table the hardware can actually run, or null on a
/// scalar-only build/machine (those configurations exercise the scalar
/// path everywhere and the equivalence tests skip).
const DspKernels* vector_table() {
#if defined(TAGBREATHE_HAVE_AVX2_TU)
  if (signal::simd::detected_level() == SimdLevel::Avx2)
    return &signal::simd::avx2_kernels();
#endif
#if defined(TAGBREATHE_HAVE_NEON_TU)
  if (signal::simd::detected_level() == SimdLevel::Neon)
    return &signal::simd::neon_kernels();
#endif
  return nullptr;
}

/// Restores the probed dispatch when a test that overrides it exits.
struct DispatchRestore {
  ~DispatchRestore() { signal::simd::reset_dispatch_for_testing(); }
};

bool bits_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool bits_equal(const cdouble& a, const cdouble& b) {
  return bits_equal(a.real(), b.real()) && bits_equal(a.imag(), b.imag());
}

template <typename T>
::testing::AssertionResult spans_bit_equal(const std::vector<T>& a,
                                           const std::vector<T>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!bits_equal(a[i], b[i]))
      return ::testing::AssertionFailure() << "bit mismatch at index " << i;
  }
  return ::testing::AssertionSuccess();
}

std::vector<cdouble> random_complex(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-3.0, 3.0);
  std::vector<cdouble> out(n);
  for (auto& v : out) v = cdouble(dist(rng), dist(rng));
  return out;
}

std::vector<double> random_real(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  std::vector<double> out(n);
  for (auto& v : out) v = dist(rng);
  return out;
}

// --- dispatch contract ------------------------------------------------------

TEST(SimdDispatch, EnvParserContract) {
  using signal::simd::env_requests_scalar;
  EXPECT_FALSE(env_requests_scalar(nullptr));
  EXPECT_FALSE(env_requests_scalar(""));
  EXPECT_FALSE(env_requests_scalar("0"));
  EXPECT_FALSE(env_requests_scalar("false"));
  EXPECT_FALSE(env_requests_scalar("off"));
  EXPECT_TRUE(env_requests_scalar("1"));
  EXPECT_TRUE(env_requests_scalar("true"));
  EXPECT_TRUE(env_requests_scalar("yes"));
  EXPECT_TRUE(env_requests_scalar("2"));
}

TEST(SimdDispatch, ActiveLevelMatchesProbeByDefault) {
  DispatchRestore restore;
  signal::simd::reset_dispatch_for_testing();
  EXPECT_EQ(signal::simd::active_level(), signal::simd::detected_level());
  EXPECT_EQ(signal::simd::active_level_value(),
            static_cast<int>(signal::simd::detected_level()));
  // The level names are stable strings (exported / printed).
  EXPECT_STREQ(signal::simd::simd_level_name(SimdLevel::Scalar), "scalar");
  EXPECT_STREQ(signal::simd::simd_level_name(SimdLevel::Avx2), "avx2");
  EXPECT_STREQ(signal::simd::simd_level_name(SimdLevel::Neon), "neon");
}

TEST(SimdDispatch, OverrideInstallsRequestedLevelOrScalarFallback) {
  DispatchRestore restore;
  // Scalar is always available.
  EXPECT_EQ(signal::simd::override_level_for_testing(SimdLevel::Scalar),
            SimdLevel::Scalar);
  EXPECT_EQ(signal::simd::active_level(), SimdLevel::Scalar);
  EXPECT_EQ(&signal::simd::kernels(), &signal::simd::scalar_kernels());
  // detected_level() keeps reporting the probe truth under an override.
  const SimdLevel probed = signal::simd::detected_level();
  EXPECT_EQ(signal::simd::detected_level(), probed);
  // Requesting the probed vector level installs it; requesting a level
  // this machine cannot run falls back to scalar.
  const SimdLevel got = signal::simd::override_level_for_testing(probed);
  EXPECT_EQ(got, probed);
  const SimdLevel impossible =
      probed == SimdLevel::Neon ? SimdLevel::Avx2 : SimdLevel::Neon;
  if (impossible != signal::simd::detected_level()) {
    EXPECT_EQ(signal::simd::override_level_for_testing(impossible),
              SimdLevel::Scalar);
  }
}

// Run under TSan via the `concurrency` label: many threads race the
// one-time dispatch resolution; every thread must observe the same
// fully-initialized table.
TEST(SimdDispatch, FirstCallRaceResolvesOneConsistentTable) {
  DispatchRestore restore;
  constexpr int kRounds = 50;
  constexpr int kThreads = 8;
  for (int round = 0; round < kRounds; ++round) {
    signal::simd::reset_dispatch_for_testing();
    std::vector<const DspKernels*> seen(kThreads, nullptr);
    std::vector<SimdLevel> levels(kThreads, SimdLevel::Scalar);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t, &seen, &levels] {
        seen[static_cast<std::size_t>(t)] = &signal::simd::kernels();
        levels[static_cast<std::size_t>(t)] = signal::simd::active_level();
      });
    }
    for (auto& th : threads) th.join();
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]);
      EXPECT_EQ(levels[static_cast<std::size_t>(t)], levels[0]);
    }
    EXPECT_EQ(levels[0], signal::simd::detected_level());
  }
}

// --- kernel-level vector-vs-scalar bit equivalence --------------------------

TEST(VectorKernels, PhaseDeltasBitIdenticalToScalar) {
  const DspKernels* vec = vector_table();
  if (vec == nullptr) GTEST_SKIP() << "no vector unit on this build/machine";
  const DspKernels& ref = signal::simd::scalar_kernels();

  std::mt19937_64 rng(0xD51);
  std::uniform_real_distribution<double> in_range(-2.0 * common::kTwoPi,
                                                  2.0 * common::kTwoPi);
  std::uniform_real_distribution<double> scale_dist(1e-3, 0.5);
  // Lengths cover the 4-lane (AVX2) and 2-lane (NEON) groups plus every
  // tail shape.
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                        std::size_t{4}, std::size_t{5}, std::size_t{7},
                        std::size_t{8}, std::size_t{15}, std::size_t{64},
                        std::size_t{67}, std::size_t{1024}}) {
    std::vector<double> dphase(n), scale(n), got(n, -1.0), want(n, -2.0);
    for (std::size_t i = 0; i < n; ++i) {
      dphase[i] = in_range(rng);
      scale[i] = scale_dist(rng);
    }
    // Salt in hostile lanes: exact boundaries, signed zeros, huge
    // magnitudes that force the scalar-fallback wrap, and non-finites.
    if (n >= 8) {
      dphase[0] = common::kPi;
      dphase[1] = -common::kPi;
      dphase[2] = common::kTwoPi;
      dphase[3] = -common::kTwoPi;
      dphase[4] = 0.0;
      dphase[5] = -0.0;
      dphase[6] = 1e9;
      dphase[7] = -1e9;
    }
    if (n >= 15) {
      dphase[8] = std::numeric_limits<double>::infinity();
      dphase[9] = -std::numeric_limits<double>::infinity();
      dphase[10] = std::numeric_limits<double>::quiet_NaN();
      dphase[11] = std::nextafter(common::kTwoPi, 0.0);
      dphase[12] = std::nextafter(-common::kTwoPi, 0.0);
      dphase[13] = 2.0 * common::kTwoPi;  // just past the vector window
      dphase[14] = std::nextafter(2.0 * common::kTwoPi, 0.0);
    }
    ref.phase_deltas(dphase.data(), scale.data(), want.data(), n);
    vec->phase_deltas(dphase.data(), scale.data(), got.data(), n);
    EXPECT_TRUE(spans_bit_equal(got, want)) << "n=" << n;
  }
}

TEST(VectorKernels, ButterflyMulScaleBitIdenticalToScalar) {
  const DspKernels* vec = vector_table();
  if (vec == nullptr) GTEST_SKIP() << "no vector unit on this build/machine";
  const DspKernels& ref = signal::simd::scalar_kernels();

  // Butterfly stages across every half that appears in a 32-point plan.
  for (std::size_t half : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                           std::size_t{8}, std::size_t{16}}) {
    const std::size_t n = 32;
    const std::vector<cdouble> tw = random_complex(half, 0xB0 + half);
    std::vector<cdouble> want = random_complex(n, 0xF00 + half);
    std::vector<cdouble> got = want;
    ref.butterfly_stage(want.data(), n, half, tw.data());
    vec->butterfly_stage(got.data(), n, half, tw.data());
    EXPECT_TRUE(spans_bit_equal(got, want)) << "half=" << half;
  }

  // Pointwise products, aliased (dst == a) and not, odd tail lengths.
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                        std::size_t{5}, std::size_t{8}, std::size_t{129}}) {
    const std::vector<cdouble> a = random_complex(n, 0xA0 + n);
    const std::vector<cdouble> b = random_complex(n, 0xB0 + n);
    std::vector<cdouble> want(n), got(n);
    ref.complex_mul(want.data(), a.data(), b.data(), n);
    vec->complex_mul(got.data(), a.data(), b.data(), n);
    EXPECT_TRUE(spans_bit_equal(got, want)) << "mul n=" << n;

    std::vector<cdouble> want_alias = a;
    std::vector<cdouble> got_alias = a;
    ref.complex_mul(want_alias.data(), want_alias.data(), b.data(), n);
    vec->complex_mul(got_alias.data(), got_alias.data(), b.data(), n);
    EXPECT_TRUE(spans_bit_equal(got_alias, want_alias)) << "alias n=" << n;

    std::vector<cdouble> want_s = b;
    std::vector<cdouble> got_s = b;
    ref.complex_scale(want_s.data(), n, 1.0 / 3.0);
    vec->complex_scale(got_s.data(), n, 1.0 / 3.0);
    EXPECT_TRUE(spans_bit_equal(got_s, want_s)) << "scale n=" << n;
  }
}

// --- transform-level equivalence -------------------------------------------

// Whole transforms, forward and inverse, must be byte-identical between
// the scalar and vector kernel tables: pow2 (pure butterfly path) and
// Bluestein sizes (butterflies + pointwise chirp products), including
// the realtime engine's actual sizes (600-sample fused tracks).
TEST(FftEquivalence, VectorVsScalarBitIdenticalAcrossSizes) {
  if (vector_table() == nullptr)
    GTEST_SKIP() << "no vector unit on this build/machine";
  DispatchRestore restore;

  const std::vector<std::size_t> sizes = {2,  4,  8,   16,  64,  256, 4096,
                                          3,  5,  31,  600, 601, 1000};
  FftScratch scratch;
  for (const std::size_t n : sizes) {
    const std::vector<cdouble> input = random_complex(n, 0x5EED + n);
    for (const FftDirection dir :
         {FftDirection::Forward, FftDirection::Inverse}) {
      const auto plan = FftPlan::get(n, dir);
      std::vector<cdouble> scalar_out(n), vector_out(n);
      signal::simd::override_level_for_testing(SimdLevel::Scalar);
      plan->execute(input, scalar_out, scratch);
      signal::simd::override_level_for_testing(
          signal::simd::detected_level());
      plan->execute(input, vector_out, scratch);
      EXPECT_TRUE(spans_bit_equal(vector_out, scalar_out))
          << "n=" << n << " dir=" << static_cast<int>(dir);
    }
  }
}

TEST(FftEquivalence, RealTransformsBitIdenticalAcrossLevels) {
  if (vector_table() == nullptr)
    GTEST_SKIP() << "no vector unit on this build/machine";
  DispatchRestore restore;

  FftScratch scratch;
  for (const std::size_t n :
       {std::size_t{64}, std::size_t{600}, std::size_t{601}}) {
    const std::vector<double> input = random_real(n, 0xFACE + n);
    std::vector<cdouble> scalar_spec, vector_spec;
    signal::simd::override_level_for_testing(SimdLevel::Scalar);
    signal::fft_real_into(input, scalar_spec, scratch);
    signal::simd::override_level_for_testing(signal::simd::detected_level());
    signal::fft_real_into(input, vector_spec, scratch);
    EXPECT_TRUE(spans_bit_equal(vector_spec, scalar_spec)) << "n=" << n;

    std::vector<cdouble> time;
    std::vector<double> scalar_time, vector_time;
    signal::simd::override_level_for_testing(SimdLevel::Scalar);
    signal::ifft_real_into(scalar_spec, time, scalar_time, scratch);
    signal::simd::override_level_for_testing(signal::simd::detected_level());
    signal::ifft_real_into(scalar_spec, time, vector_time, scratch);
    EXPECT_TRUE(spans_bit_equal(vector_time, scalar_time)) << "n=" << n;
  }
}

// --- batch vs single identity ----------------------------------------------

TEST(BatchedTransforms, FftManyMatchesPerJobExecutes) {
  FftScratch scratch;
  // Mixed sizes in one batch (forces plan re-fetch mid-sweep), plus an
  // empty job that must pass through untouched.
  const std::vector<std::size_t> sizes = {600, 600, 64, 601, 0, 600};
  std::vector<std::vector<cdouble>> inputs, batch_out, single_out;
  for (std::size_t j = 0; j < sizes.size(); ++j) {
    inputs.push_back(random_complex(sizes[j], 0xC0FE + j));
    batch_out.emplace_back(sizes[j]);
    single_out.emplace_back(sizes[j]);
  }
  std::vector<signal::FftJob> jobs;
  for (std::size_t j = 0; j < sizes.size(); ++j)
    jobs.push_back(signal::FftJob{inputs[j], batch_out[j]});
  signal::fft_many(FftDirection::Forward, jobs, scratch);
  for (std::size_t j = 0; j < sizes.size(); ++j) {
    if (sizes[j] == 0) continue;
    FftPlan::get(sizes[j], FftDirection::Forward)
        ->execute(inputs[j], single_out[j], scratch);
  }
  for (std::size_t j = 0; j < sizes.size(); ++j)
    EXPECT_TRUE(spans_bit_equal(batch_out[j], single_out[j])) << "job " << j;
}

TEST(BatchedTransforms, RealManyMatchesSingleCalls) {
  FftScratch scratch;
  const std::vector<std::size_t> sizes = {600, 1, 600, 601, 0, 64};
  std::vector<std::vector<double>> inputs;
  std::vector<std::vector<cdouble>> batch_spec(sizes.size()),
      single_spec(sizes.size());
  for (std::size_t j = 0; j < sizes.size(); ++j)
    inputs.push_back(random_real(sizes[j], 0xABBA + j));

  std::vector<signal::RealFftJob> jobs;
  for (std::size_t j = 0; j < sizes.size(); ++j)
    jobs.push_back(signal::RealFftJob{inputs[j], &batch_spec[j]});
  signal::fft_real_many(jobs, scratch);
  for (std::size_t j = 0; j < sizes.size(); ++j)
    signal::fft_real_into(inputs[j], single_spec[j], scratch);
  for (std::size_t j = 0; j < sizes.size(); ++j)
    EXPECT_TRUE(spans_bit_equal(batch_spec[j], single_spec[j]))
        << "fwd job " << j;

  // Inverse sweep: the batch shares one staging buffer, singles each
  // use their own — outputs must still match bit for bit.
  std::vector<cdouble> shared_time;
  std::vector<std::vector<double>> batch_time(sizes.size()),
      single_time(sizes.size());
  std::vector<signal::RealIfftJob> inv_jobs;
  for (std::size_t j = 0; j < sizes.size(); ++j)
    inv_jobs.push_back(
        signal::RealIfftJob{single_spec[j], &shared_time, &batch_time[j]});
  signal::ifft_real_many(inv_jobs, scratch);
  for (std::size_t j = 0; j < sizes.size(); ++j) {
    std::vector<cdouble> own_time;
    signal::ifft_real_into(single_spec[j], own_time, single_time[j], scratch);
    EXPECT_TRUE(spans_bit_equal(batch_time[j], single_time[j]))
        << "inv job " << j;
  }
}

TEST(BatchedTransforms, BandlimitManyMatchesSingleFilters) {
  signal::FftWorkspace batch_ws, single_ws;
  constexpr double kRate = 20.0;
  const std::vector<std::size_t> sizes = {600, 600, 480, 600};
  std::vector<std::vector<double>> inputs;
  std::vector<std::vector<double>> batch_out(sizes.size()),
      single_out(sizes.size());
  for (std::size_t j = 0; j < sizes.size(); ++j)
    inputs.push_back(random_real(sizes[j], 0xBEA7 + j));

  std::vector<signal::BandLimitJob> jobs;
  for (std::size_t j = 0; j < sizes.size(); ++j) {
    // Alternate band-pass and DC-rejecting low-pass shapes.
    const double f_lo = (j % 2 == 0) ? 0.05 : signal::kDcRejectHz;
    jobs.push_back(
        signal::BandLimitJob{inputs[j], kRate, f_lo, 0.67, &batch_out[j]});
  }
  signal::fft_bandlimit_many(jobs, batch_ws);
  for (std::size_t j = 0; j < sizes.size(); ++j) {
    if (j % 2 == 0) {
      signal::fft_bandpass_into(inputs[j], kRate, 0.05, 0.67, single_ws,
                                single_out[j]);
    } else {
      signal::fft_lowpass_into(inputs[j], kRate, 0.67, /*remove_dc=*/true,
                               single_ws, single_out[j]);
    }
    EXPECT_TRUE(spans_bit_equal(batch_out[j], single_out[j])) << "job " << j;
  }
}

std::vector<signal::TimedSample> breathing_track(std::size_t n, double rate_hz,
                                                 double breath_hz,
                                                 std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> noise(0.0, 0.0004);
  std::vector<signal::TimedSample> track(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / rate_hz;
    track[i] = signal::TimedSample{
        t, 0.005 * std::sin(common::kTwoPi * breath_hz * t) + 0.0002 * t +
               noise(rng)};
  }
  return track;
}

TEST(BatchedExtraction, ExtractManyMatchesSingleExtractBitwise) {
  const core::BreathExtractor extractor;
  constexpr double kRate = 20.0;
  std::vector<std::vector<signal::TimedSample>> tracks;
  for (std::size_t j = 0; j < 8; ++j)
    tracks.push_back(
        breathing_track(600, kRate, 0.15 + 0.03 * static_cast<double>(j),
                        0x1234 + j));
  tracks.push_back({});                                   // too short: empty
  tracks.push_back(breathing_track(3, kRate, 0.2, 0x77)); // still too short

  std::vector<core::BreathSignal> batch(tracks.size());
  std::vector<core::ExtractJob> jobs;
  for (std::size_t j = 0; j < tracks.size(); ++j)
    jobs.push_back(core::ExtractJob{tracks[j], kRate, &batch[j]});
  signal::FftWorkspace ws;
  core::ExtractScratch scratch;
  extractor.extract_many(jobs, ws, scratch);

  for (std::size_t j = 0; j < tracks.size(); ++j) {
    const core::BreathSignal single = extractor.extract(tracks[j], kRate);
    ASSERT_EQ(batch[j].samples.size(), single.samples.size()) << "job " << j;
    EXPECT_TRUE(bits_equal(batch[j].sample_rate_hz, single.sample_rate_hz));
    for (std::size_t i = 0; i < single.samples.size(); ++i) {
      ASSERT_TRUE(bits_equal(batch[j].samples[i].value,
                             single.samples[i].value))
          << "job " << j << " sample " << i;
      ASSERT_TRUE(bits_equal(batch[j].samples[i].time_s,
                             single.samples[i].time_s))
          << "job " << j << " sample " << i;
    }
  }
}

// --- zero-allocation gate on the batched steady state -----------------------

TEST(BatchedZeroAlloc, WarmBandlimitSweepAllocatesNothing) {
  signal::FftWorkspace ws;
  constexpr double kRate = 20.0;
  constexpr std::size_t kJobs = 16;
  std::vector<std::vector<double>> inputs;
  std::vector<std::vector<double>> outs(kJobs);
  for (std::size_t j = 0; j < kJobs; ++j)
    inputs.push_back(random_real(600, 0xAA + j));
  std::vector<signal::BandLimitJob> jobs;
  for (std::size_t j = 0; j < kJobs; ++j)
    jobs.push_back(
        signal::BandLimitJob{inputs[j], kRate, 0.05, 0.67, &outs[j]});

  signal::fft_bandlimit_many(jobs, ws);  // warm-up: plans, staging, outs
  const std::uint64_t before = g_allocations.load();
  for (int round = 0; round < 20; ++round) signal::fft_bandlimit_many(jobs, ws);
  EXPECT_EQ(g_allocations.load() - before, 0u);
}

TEST(BatchedZeroAlloc, WarmExtractManySweepAllocatesNothing) {
  // adaptive_band off: the ACF peak search allocates by design (it is
  // not on the batched-transform contract); the filter sweep itself must
  // run clean.
  core::ExtractorConfig config;
  config.adaptive_band = false;
  const core::BreathExtractor extractor(config);
  constexpr double kRate = 20.0;
  constexpr std::size_t kJobs = 12;
  std::vector<std::vector<signal::TimedSample>> tracks;
  for (std::size_t j = 0; j < kJobs; ++j)
    tracks.push_back(breathing_track(600, kRate, 0.2, 0x99 + j));
  std::vector<core::BreathSignal> outs(kJobs);
  std::vector<core::ExtractJob> jobs;
  for (std::size_t j = 0; j < kJobs; ++j)
    jobs.push_back(core::ExtractJob{tracks[j], kRate, &outs[j]});
  signal::FftWorkspace ws;
  core::ExtractScratch scratch;

  extractor.extract_many(jobs, ws, scratch);  // warm-up
  const std::uint64_t before = g_allocations.load();
  for (int round = 0; round < 20; ++round)
    extractor.extract_many(jobs, ws, scratch);
  EXPECT_EQ(g_allocations.load() - before, 0u);
}

// --- scratch alignment ------------------------------------------------------

TEST(ScratchAlignment, PerSlotArenasAreCacheLineAligned) {
  static_assert(alignof(FftScratch) == 64);
  static_assert(alignof(core::AnalysisScratch) == 64);
  static_assert(sizeof(core::AnalysisScratch) % 64 == 0);

  std::vector<FftScratch> fft_slots(4);
  for (const FftScratch& s : fft_slots)
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&s) % 64, 0u);
  std::vector<core::AnalysisScratch> slots(4);
  for (const core::AnalysisScratch& s : slots)
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&s) % 64, 0u);
}

// --- dispatch gauge ---------------------------------------------------------

TEST(DispatchGauge, PipelineBindExportsActiveLevel) {
  obs::Observability hub(256);
  core::RealtimePipeline pipeline;
  pipeline.bind_observability(hub);
  const obs::MetricsSnapshot snap = hub.metrics().snapshot();
  bool found = false;
  for (const obs::GaugeSample& g : snap.gauges) {
    if (g.name != "dsp_simd_level") continue;
    found = true;
    EXPECT_EQ(g.value,
              static_cast<double>(signal::simd::active_level_value()));
  }
  EXPECT_TRUE(found) << "dsp_simd_level gauge missing from snapshot";
}

// --- pipeline event-log identity gates --------------------------------------

core::SoakConfig dsp_soak(std::uint64_t seed, std::size_t analysis_batch) {
  core::SoakConfig cfg;
  cfg.n_users = 4;
  cfg.tags_per_user = 2;
  cfg.duration_s = 120.0;
  cfg.chaos = core::ChaosConfig::composite(seed);
  cfg.pipeline.analysis_batch = analysis_batch;
  return cfg;
}

// The analysis_batch knob must never change a single output byte: the
// batched extract_many sweep and the per-user path share every
// arithmetic code path.
TEST(PipelineIdentity, EventLogByteIdenticalAcrossBatchSizes) {
  const auto unbatched = core::run_soak(dsp_soak(0xD5B, 1));
  const auto small_batch = core::run_soak(dsp_soak(0xD5B, 3));
  const auto big_batch = core::run_soak(dsp_soak(0xD5B, 64));
  EXPECT_TRUE(unbatched.ok()) << unbatched.violations.front();
  EXPECT_TRUE(small_batch.ok()) << small_batch.violations.front();
  EXPECT_TRUE(big_batch.ok()) << big_batch.violations.front();
  ASSERT_GT(unbatched.event_log.size(), 0u);
  EXPECT_EQ(unbatched.event_log, small_batch.event_log);
  EXPECT_EQ(unbatched.event_log, big_batch.event_log);
}

// Flipping the kernel table between scalar and the machine's vector
// unit must leave the event log byte-identical — the realtime proof of
// the kernel-level bit-equivalence contract.
TEST(PipelineIdentity, EventLogByteIdenticalAcrossSimdLevels) {
  if (vector_table() == nullptr)
    GTEST_SKIP() << "no vector unit on this build/machine";
  DispatchRestore restore;
  signal::simd::override_level_for_testing(SimdLevel::Scalar);
  const auto scalar = core::run_soak(dsp_soak(0x51D, 16));
  signal::simd::override_level_for_testing(signal::simd::detected_level());
  const auto vector = core::run_soak(dsp_soak(0x51D, 16));
  EXPECT_TRUE(scalar.ok()) << scalar.violations.front();
  EXPECT_TRUE(vector.ok()) << vector.violations.front();
  ASSERT_GT(scalar.event_log.size(), 0u);
  EXPECT_EQ(scalar.event_log, vector.event_log);
}

}  // namespace
}  // namespace tagbreathe
