// Parameterised property sweeps across the system's operating envelope.
//
// These are coarser-grained than the unit suites: each case asserts an
// invariant over a grid point of the (rate, distance, population, ...)
// space rather than one hand-picked input.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/fusion.hpp"
#include "core/monitor.hpp"
#include "core/phase_preprocess.hpp"
#include "experiments/runner.hpp"
#include "rfid/gen2_mac.hpp"

namespace tagbreathe {
namespace {

// --- end-to-end accuracy over the (rate, distance) grid ------------------------

class RateDistanceGrid
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RateDistanceGrid, AccuracyAboveNinetyPercent) {
  const auto [rate_bpm, distance_m] = GetParam();
  experiments::ScenarioConfig cfg;
  cfg.distance_m = distance_m;
  cfg.users[0].rate_bpm = rate_bpm;
  cfg.seed = 9000 + static_cast<std::uint64_t>(rate_bpm * 10 + distance_m);
  // Average three trials: single 2-minute trials at the band edges are
  // legitimately noisy (see EXPERIMENTS.md).
  const auto agg = experiments::run_trials(cfg, 3);
  EXPECT_GT(agg.accuracy.mean(), 0.90)
      << rate_bpm << " bpm @ " << distance_m << " m";
}

INSTANTIATE_TEST_SUITE_P(
    TableOneEnvelope, RateDistanceGrid,
    ::testing::Combine(::testing::Values(6.0, 10.0, 14.0, 19.0),
                       ::testing::Values(1.0, 3.0, 5.0)));

// --- MAC throughput properties over population sizes ----------------------------

class MacPopulation : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MacPopulation, ThroughputAndFairness) {
  const std::size_t n = GetParam();
  rfid::Gen2Mac mac(n);
  common::Rng rng(1000 + n);
  std::vector<int> reads(n, 0);
  double t = 0.0;
  while (t < 8.0) {
    const auto slot = mac.step(std::vector<bool>(n, true),
                               [](std::size_t) { return 1.0; }, rng);
    t += slot.duration_s;
    if (slot.kind == rfid::SlotKind::Success)
      ++reads[static_cast<std::size_t>(slot.tag_index)];
  }
  int total = 0, lo = reads[0], hi = reads[0];
  for (int r : reads) {
    total += r;
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  // Saturated total throughput: between 40 and 120 reads/s for any
  // population in the evaluated range.
  const double rate = total / 8.0;
  EXPECT_GT(rate, 40.0) << n << " tags";
  EXPECT_LT(rate, 120.0) << n << " tags";
  // No starvation: the slowest tag gets at least a third of the fastest.
  EXPECT_GT(lo * 3, hi) << n << " tags";
}

INSTANTIATE_TEST_SUITE_P(Populations, MacPopulation,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

// --- preprocessor exact recovery across channel plans and rates ------------------

class PreprocessRecovery
    : public ::testing::TestWithParam<std::tuple<bool, double>> {};

TEST_P(PreprocessRecovery, NoiseFreeTrackMatchesTruth) {
  const auto [us_plan, rate_bpm] = GetParam();
  const rfid::ChannelPlan plan = us_plan ? rfid::ChannelPlan::us_plan()
                                         : rfid::ChannelPlan::paper_plan();
  rfid::HopSchedule hops(plan, 5);
  rfid::PhaseModel phase{rfid::PhaseModelConfig{}};
  const double f = common::bpm_to_hz(rate_bpm);

  core::PhasePreprocessor pre;
  std::vector<signal::TimedSample> deltas;
  signal::TimedSample delta;
  for (double t = 0.0; t < 30.0; t += 1.0 / 60.0) {
    const auto ch = hops.channel_at(t);
    core::TagRead r;
    r.epc = rfid::Epc96::from_user_tag(1, 1);
    r.time_s = t;
    r.channel_index = static_cast<std::uint16_t>(ch);
    r.frequency_hz = plan.frequency_hz(ch);
    const double d = 3.0 + 0.005 * std::sin(common::kTwoPi * f * t);
    r.phase_rad = phase.ideal_phase(d, plan.wavelength_m(ch), ch, 9);
    if (pre.push(r, delta)) deltas.push_back(delta);
  }
  ASSERT_GT(deltas.size(), 500u);
  const auto track = core::integrate_displacement(deltas);
  double max_err = 0.0;
  for (const auto& s : track) {
    const double truth = 0.005 * std::sin(common::kTwoPi * f * s.time_s) -
                         0.005 * std::sin(0.0);
    max_err = std::max(max_err, std::abs(s.value - truth));
  }
  EXPECT_LT(max_err, 0.0025) << plan.region() << " @ " << rate_bpm;
}

INSTANTIATE_TEST_SUITE_P(
    PlansAndRates, PreprocessRecovery,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(6.0, 12.0, 20.0)));

// --- fusion invariances -----------------------------------------------------------

TEST(FusionProperties, StreamOrderInvariant) {
  common::Rng rng(4);
  std::vector<std::vector<signal::TimedSample>> streams(3);
  for (auto& s : streams) {
    double t = 0.0;
    while (t < 20.0) {
      t += rng.exponential(30.0);
      s.push_back({t, rng.normal(0.0, 1e-3)});
    }
  }
  core::FusionConfig cfg;
  cfg.align_signs = false;  // sign alignment is order-independent too,
                            // but keep this check purely about binning
  const auto a = core::fuse_streams(streams, 0.0, 20.0, cfg);
  std::swap(streams[0], streams[2]);
  const auto b = core::fuse_streams(streams, 0.0, 20.0, cfg);
  ASSERT_EQ(a.track.size(), b.track.size());
  for (std::size_t i = 0; i < a.track.size(); ++i)
    EXPECT_NEAR(a.track[i].value, b.track[i].value, 1e-12);
}

TEST(FusionProperties, GlobalSignFlipIsRecovered) {
  // Flipping EVERY stream's sign flips the fused track (alignment fixes
  // relative signs, not the arbitrary global one) — downstream rate
  // estimation is sign-blind, so only |track| must match.
  common::Rng rng(5);
  std::vector<std::vector<signal::TimedSample>> streams(3);
  for (auto& s : streams) {
    double t = 0.0;
    double prev = 0.0;
    while (t < 30.0) {
      t += 1.0 / 40.0;
      const double v = 0.005 * std::sin(common::kTwoPi * 0.2 * t);
      s.push_back({t, v - prev + rng.normal(0.0, 1e-4)});
      prev = v;
    }
  }
  auto flipped = streams;
  for (auto& s : flipped)
    for (auto& d : s) d.value = -d.value;
  const auto a = core::fuse_streams(streams);
  const auto b = core::fuse_streams(flipped);
  ASSERT_EQ(a.track.size(), b.track.size());
  for (std::size_t i = 0; i < a.track.size(); ++i)
    EXPECT_NEAR(std::abs(a.track[i].value), std::abs(b.track[i].value),
                1e-9);
}

// --- determinism across the public surface ----------------------------------------

class SeedDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedDeterminism, IdenticalSeedsIdenticalResults) {
  experiments::ScenarioConfig cfg;
  cfg.duration_s = 20.0;
  cfg.seed = GetParam();
  const auto a = experiments::run_trial(cfg);
  const auto b = experiments::run_trial(cfg);
  ASSERT_EQ(a.users.size(), b.users.size());
  EXPECT_DOUBLE_EQ(a.users[0].estimated_bpm, b.users[0].estimated_bpm);
  EXPECT_EQ(a.total_reads, b.total_reads);
  EXPECT_DOUBLE_EQ(a.mean_rssi_dbm, b.mean_rssi_dbm);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedDeterminism,
                         ::testing::Values(1, 7, 42, 1000, 99999));

}  // namespace
}  // namespace tagbreathe
