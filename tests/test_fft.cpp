// Unit + property tests: FFT (radix-2 and Bluestein paths).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "signal/fft.hpp"

namespace tagbreathe::signal {
namespace {

using common::kTwoPi;

std::vector<cdouble> random_signal(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<cdouble> x(n);
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  return x;
}

/// O(N^2) reference DFT.
std::vector<cdouble> naive_dft(std::span<const cdouble> x) {
  const std::size_t n = x.size();
  std::vector<cdouble> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cdouble acc(0.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -kTwoPi * static_cast<double>(k * j) /
                           static_cast<double>(n);
      acc += x[j] * cdouble(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

TEST(Fft, HelpersNextPow2AndIsPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
}

TEST(Fft, RejectsNonPow2InPlace) {
  std::vector<cdouble> x(6);
  EXPECT_THROW(fft_pow2(x), std::invalid_argument);
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, InverseRecoversInput) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 1000 + n);
  const auto back = ifft(fft(x));
  ASSERT_EQ(back.size(), n);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(back[i] - x[i]), 0.0, 1e-9) << "i=" << i;
}

TEST_P(FftRoundTrip, ParsevalHolds) {
  const std::size_t n = GetParam();
  const auto x = random_signal(n, 2000 + n);
  const auto X = fft(x);
  double ex = 0.0, eX = 0.0;
  for (const auto& v : x) ex += std::norm(v);
  for (const auto& v : X) eX += std::norm(v);
  EXPECT_NEAR(eX / ex, static_cast<double>(n), 1e-6 * static_cast<double>(n));
}

TEST_P(FftRoundTrip, MatchesNaiveDft) {
  const std::size_t n = GetParam();
  if (n > 512) GTEST_SKIP() << "naive DFT too slow";
  const auto x = random_signal(n, 3000 + n);
  const auto fast = fft(x);
  const auto slow = naive_dft(x);
  for (std::size_t k = 0; k < n; ++k)
    EXPECT_NEAR(std::abs(fast[k] - slow[k]), 0.0, 1e-7) << "bin " << k;
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 17, 64, 100,
                                           128, 241, 256, 500, 1000, 2048,
                                           2400));

TEST(Fft, Linearity) {
  const auto a = random_signal(128, 5);
  const auto b = random_signal(128, 6);
  std::vector<cdouble> combo(128);
  for (std::size_t i = 0; i < 128; ++i) combo[i] = 2.0 * a[i] - 3.0 * b[i];
  const auto fa = fft(a);
  const auto fb = fft(b);
  const auto fc = fft(combo);
  for (std::size_t i = 0; i < 128; ++i)
    EXPECT_NEAR(std::abs(fc[i] - (2.0 * fa[i] - 3.0 * fb[i])), 0.0, 1e-8);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<cdouble> x(64, cdouble(0.0, 0.0));
  x[0] = cdouble(1.0, 0.0);
  const auto X = fft(x);
  for (const auto& v : X) EXPECT_NEAR(std::abs(v - cdouble(1.0, 0.0)), 0.0, 1e-10);
}

TEST(Fft, DcGoesToBinZero) {
  std::vector<double> x(100, 2.5);
  const auto X = fft_real(x);
  EXPECT_NEAR(std::abs(X[0]), 250.0, 1e-6);
  for (std::size_t k = 1; k < X.size(); ++k)
    EXPECT_NEAR(std::abs(X[k]), 0.0, 1e-7);
}

TEST(Fft, PureToneLandsInCorrectBin) {
  constexpr std::size_t n = 200;  // Bluestein path
  constexpr double fs = 20.0;
  constexpr std::size_t target_bin = 7;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = std::sin(kTwoPi * static_cast<double>(target_bin) *
                    static_cast<double>(i) / static_cast<double>(n));
  const auto X = fft_real(x);
  const auto mags = magnitude(X);
  std::size_t peak = 1;
  for (std::size_t k = 1; k <= n / 2; ++k)
    if (mags[k] > mags[peak]) peak = k;
  EXPECT_EQ(peak, target_bin);
  EXPECT_NEAR(bin_frequency(peak, n, fs),
              static_cast<double>(target_bin) * fs / n, 1e-12);
}

TEST(Fft, RealSignalSpectrumIsConjugateSymmetric) {
  common::Rng rng(77);
  std::vector<double> x(96);
  for (auto& v : x) v = rng.normal();
  const auto X = fft_real(x);
  for (std::size_t k = 1; k < x.size(); ++k) {
    const auto sym = std::conj(X[x.size() - k]);
    EXPECT_NEAR(std::abs(X[k] - sym), 0.0, 1e-8);
  }
}

TEST(Fft, IfftRealRecoversRealSignal) {
  common::Rng rng(78);
  std::vector<double> x(150);
  for (auto& v : x) v = rng.normal();
  const auto back = ifft_real(fft_real(x));
  ASSERT_EQ(back.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(back[i], x[i], 1e-9);
}

TEST(Fft, BinFrequencyNegativeHalf) {
  EXPECT_DOUBLE_EQ(bin_frequency(0, 8, 16.0), 0.0);
  EXPECT_DOUBLE_EQ(bin_frequency(4, 8, 16.0), 8.0);   // Nyquist
  EXPECT_DOUBLE_EQ(bin_frequency(5, 8, 16.0), -6.0);  // negative side
  EXPECT_DOUBLE_EQ(bin_frequency(7, 8, 16.0), -2.0);
}

TEST(Fft, EmptyInput) {
  EXPECT_TRUE(fft(std::vector<cdouble>{}).empty());
  EXPECT_TRUE(ifft(std::vector<cdouble>{}).empty());
}

}  // namespace
}  // namespace tagbreathe::signal
