// Shared soak-invariant gate for the chaos, crash-recovery and fleet
// test suites (ISSUE 6 satellite): one place asserts that a soak came
// back clean and that the queue's books balance, instead of three
// hand-rolled copies drifting apart.
#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "core/ingest.hpp"

namespace tagbreathe::testutil {

/// Fails the current test once per violation line, so a broken soak
/// names every violated invariant instead of just "ok() was false".
inline void expect_no_violations(const std::vector<std::string>& violations,
                                 const std::string& context = {}) {
  for (const std::string& v : violations) ADD_FAILURE() << context << v;
}

/// Counter-conservation gate: every read accepted into a queue is
/// drained, shed or coalesced — never silently lost — and the depth
/// high-water mark respects the capacity bound. The soak harnesses run
/// the same law internally (core::append_queue_invariant_violations);
/// asserting it here too keeps the tests honest if a harness regresses.
inline void expect_queue_conservation(const core::IngestQueueCounters& queue,
                                      std::size_t capacity,
                                      const std::string& context = {}) {
  EXPECT_EQ(queue.enqueued,
            queue.drained + queue.shed_oldest + queue.coalesced)
      << context << "queue counter conservation broken";
  EXPECT_LE(queue.peak_depth, capacity)
      << context << "queue depth exceeded capacity";
}

}  // namespace tagbreathe::testutil
