// Unit + integration tests: spectrogram (STFT) and rate trajectories.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/trajectory.hpp"
#include "experiments/scenario.hpp"
#include "signal/spectrum.hpp"

namespace tagbreathe {
namespace {

// --- STFT -------------------------------------------------------------------

TEST(Stft, ShapesAndTimes) {
  std::vector<double> x(1000, 0.0);
  const auto spec = signal::stft(x, 20.0, 256, 128);
  ASSERT_FALSE(spec.frames.empty());
  EXPECT_EQ(spec.frames.size(), spec.frame_times_s.size());
  EXPECT_EQ(spec.frames[0].size(), spec.bin_frequencies_hz.size());
  EXPECT_EQ(spec.frames[0].size(), 129u);  // 256/2 + 1
  // Frame centres advance by hop / fs = 6.4 s.
  EXPECT_NEAR(spec.frame_times_s[1] - spec.frame_times_s[0], 6.4, 1e-9);
  EXPECT_NEAR(spec.frame_times_s[0], 6.4, 1e-9);  // segment/2 / fs
}

TEST(Stft, TracksFrequencyChange) {
  // 2 Hz tone for the first half, 5 Hz for the second.
  constexpr double fs = 40.0;
  std::vector<double> x;
  for (double t = 0.0; t < 30.0; t += 1.0 / fs)
    x.push_back(std::sin(common::kTwoPi * (t < 15.0 ? 2.0 : 5.0) * t));
  const auto spec = signal::stft(x, fs, 256, 64);
  ASSERT_GT(spec.frames.size(), 10u);

  auto peak_freq = [&spec](std::size_t frame) {
    std::size_t best = 1;
    for (std::size_t k = 1; k < spec.frames[frame].size(); ++k)
      if (spec.frames[frame][k] > spec.frames[frame][best]) best = k;
    return spec.bin_frequencies_hz[best];
  };
  // An early frame sees 2 Hz; a late frame sees 5 Hz.
  EXPECT_NEAR(peak_freq(1), 2.0, 0.3);
  EXPECT_NEAR(peak_freq(spec.frames.size() - 2), 5.0, 0.3);
}

TEST(Stft, Validation) {
  std::vector<double> x(100, 0.0);
  EXPECT_THROW(signal::stft(x, 20.0, 4, 2), std::invalid_argument);
  EXPECT_THROW(signal::stft(x, 20.0, 64, 0), std::invalid_argument);
  EXPECT_THROW(signal::stft(x, 20.0, 64, 128), std::invalid_argument);
  EXPECT_TRUE(signal::stft(std::vector<double>(10), 20.0, 64, 32)
                  .frames.empty());
}

// --- rate trajectory -----------------------------------------------------------

TEST(Trajectory, FollowsScheduledRateChange) {
  experiments::ScenarioConfig cfg;
  cfg.duration_s = 180.0;
  cfg.seed = 81;
  cfg.users[0].schedule = {{0.0, 9.0}, {90.0, 16.0}};
  experiments::Scenario scenario(cfg);
  const auto reads = scenario.run();

  const auto trajectories = core::compute_rate_trajectories(reads);
  ASSERT_EQ(trajectories.size(), 1u);
  const auto& traj = trajectories[0];
  EXPECT_EQ(traj.user_id, 1u);
  ASSERT_GT(traj.points.size(), 20u);

  // Early windows track 9 bpm, late windows 16 bpm.
  EXPECT_NEAR(traj.rate_at(30.0), 9.0, 1.2);
  EXPECT_NEAR(traj.rate_at(160.0), 16.0, 1.5);
  // The transition is crossed monotonically-ish in between.
  EXPECT_GT(traj.rate_at(120.0), traj.rate_at(40.0));
}

TEST(Trajectory, ShortCaptureFallsBackToSingleWindow) {
  experiments::ScenarioConfig cfg;
  cfg.duration_s = 20.0;  // shorter than the 30 s window
  cfg.seed = 82;
  experiments::Scenario scenario(cfg);
  const auto reads = scenario.run();
  const auto trajectories = core::compute_rate_trajectories(reads);
  ASSERT_EQ(trajectories.size(), 1u);
  EXPECT_EQ(trajectories[0].points.size(), 1u);
  EXPECT_NEAR(trajectories[0].points[0].rate_bpm, 10.0, 1.5);
}

TEST(Trajectory, EmptyAndValidation) {
  EXPECT_TRUE(core::compute_rate_trajectories({}).empty());
  core::TrajectoryConfig bad;
  bad.hop_s = 0.0;
  std::vector<core::TagRead> one(1);
  EXPECT_THROW(core::compute_rate_trajectories(one, bad),
               std::invalid_argument);
}

TEST(Trajectory, RateAtInterpolatesAndClamps) {
  core::RateTrajectory traj;
  traj.points = {{10.0, 10.0, true}, {20.0, 14.0, true},
                 {30.0, 0.0, false}};  // unreliable point ignored
  EXPECT_DOUBLE_EQ(traj.rate_at(5.0), 10.0);    // clamp left
  EXPECT_DOUBLE_EQ(traj.rate_at(15.0), 12.0);   // interpolated
  EXPECT_DOUBLE_EQ(traj.rate_at(25.0), 14.0);   // clamp right of reliable
  core::RateTrajectory empty;
  EXPECT_DOUBLE_EQ(empty.rate_at(1.0), 0.0);
}

}  // namespace
}  // namespace tagbreathe
