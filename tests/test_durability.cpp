// Crash-safe durability layer: CRC framing, journal write/scan under
// corruption, snapshot atomicity + format evolution, recovery replay,
// and the seeded crash-injection soak (every kill point must recover
// and the recovered event stream must converge with a golden run).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/crc32.hpp"
#include "common/rng.hpp"
#include "core/chaos.hpp"
#include "core/journal.hpp"
#include "core/recovery.hpp"
#include "core/replay.hpp"
#include "core/snapshot.hpp"
#include "soak_invariants.hpp"

namespace fs = std::filesystem;
using namespace tagbreathe;
using namespace tagbreathe::core;

namespace {

/// Unique scratch directory, removed on scope exit.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    static std::atomic<unsigned> counter{0};
    path = fs::temp_directory_path() /
           ("tagbreathe_durability_" + std::to_string(::getpid()) + "_" + tag +
            "_" + std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

TagRead make_read(double t, std::uint64_t user, std::uint32_t tag,
                  double phase) {
  TagRead r;
  r.time_s = t;
  r.epc = rfid::Epc96::from_user_tag(user, tag);
  r.antenna_id = 1;
  r.channel_index = 7;
  r.frequency_hz = 920.625e6;
  r.rssi_dbm = -52.5;
  r.phase_rad = phase;
  r.doppler_hz = 0.25;
  return r;
}

std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

void write_file(const fs::path& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out) << path;
}

/// The single journal/snapshot file in `dir` matching `ext`, by name
/// order. Index -1 = last.
std::vector<fs::path> files_with_ext(const fs::path& dir,
                                     const std::string& ext) {
  std::vector<fs::path> out;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.path().extension() == ext) out.push_back(entry.path());
  std::sort(out.begin(), out.end());
  return out;
}

JournalConfig journal_config(const TempDir& dir) {
  JournalConfig cfg;
  cfg.directory = dir.str();
  cfg.commit_batch = 4;
  return cfg;
}

}  // namespace

// ---------------------------------------------------------------------------
// CRC32

TEST(Crc32, KnownVectorAndIncremental) {
  const char* check = "123456789";
  EXPECT_EQ(common::crc32(check, 9), 0xCBF43926u);
  EXPECT_EQ(common::crc32("", 0), 0u);

  std::uint32_t state = common::crc32_init();
  state = common::crc32_update(state, check, 4);
  state = common::crc32_update(state, check + 4, 5);
  EXPECT_EQ(common::crc32_final(state), 0xCBF43926u);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(64, 0xA5);
  const std::uint32_t clean = common::crc32(data.data(), data.size());
  data[17] ^= 0x04;
  EXPECT_NE(common::crc32(data.data(), data.size()), clean);
}

// ---------------------------------------------------------------------------
// Byte codec

TEST(ByteCodec, RoundTripAndUnderrun) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u16(0xBEEF);
  w.put_u32(0xDEADBEEFu);
  w.put_u64(0x0123456789ABCDEFull);
  w.put_f64(-12.625);

  ByteReader r(w.data(), w.size());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.f64(), -12.625);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_THROW(r.u8(), DurabilityError);
}

TEST(ByteCodec, TagReadRoundTripIsExact) {
  const TagRead in = make_read(1234.5678, 42, 7, 2.718281828);
  ByteWriter w;
  encode_tag_read(w, in);
  ByteReader r(w.data(), w.size());
  const TagRead out = decode_tag_read(r);
  EXPECT_EQ(out.time_s, in.time_s);
  EXPECT_EQ(out.epc, in.epc);
  EXPECT_EQ(out.antenna_id, in.antenna_id);
  EXPECT_EQ(out.channel_index, in.channel_index);
  EXPECT_EQ(out.frequency_hz, in.frequency_hz);
  EXPECT_EQ(out.rssi_dbm, in.rssi_dbm);
  EXPECT_EQ(out.phase_rad, in.phase_rad);
  EXPECT_EQ(out.doppler_hz, in.doppler_hz);
  EXPECT_EQ(r.remaining(), 0u);
}

// ---------------------------------------------------------------------------
// Journal

TEST(Journal, RoundTripInOrder) {
  TempDir dir("journal_roundtrip");
  {
    JournalWriter writer(journal_config(dir));
    for (int i = 0; i < 10; ++i)
      writer.append(make_read(0.1 * i, 1, 1, 0.01 * i));
    writer.commit();
    EXPECT_EQ(writer.last_committed_seq(), 10u);
    EXPECT_FALSE(writer.wedged());
  }
  std::vector<JournalRecord> records;
  const JournalScanResult scan = scan_journal(
      dir.str(), 0, [&](const JournalRecord& r) { records.push_back(r); });
  ASSERT_EQ(records.size(), 10u);
  EXPECT_EQ(scan.delivered, 10u);
  EXPECT_EQ(scan.max_seq, 10u);
  EXPECT_EQ(scan.counters.journal_records_corrupt, 0u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, i + 1);
    EXPECT_EQ(records[i].read.time_s, 0.1 * static_cast<double>(i));
    EXPECT_EQ(records[i].read.phase_rad, 0.01 * static_cast<double>(i));
  }
}

TEST(Journal, AfterSeqFiltersReplay) {
  TempDir dir("journal_afterseq");
  {
    JournalWriter writer(journal_config(dir));
    for (int i = 0; i < 8; ++i) writer.append(make_read(0.1 * i, 1, 1, 0.0));
  }  // destructor commits the tail
  std::vector<std::uint64_t> seqs;
  const JournalScanResult scan = scan_journal(
      dir.str(), 5, [&](const JournalRecord& r) { seqs.push_back(r.seq); });
  EXPECT_EQ(scan.delivered, 3u);
  EXPECT_EQ(scan.max_seq, 8u);
  ASSERT_EQ(seqs.size(), 3u);
  EXPECT_EQ(seqs.front(), 6u);
  EXPECT_EQ(seqs.back(), 8u);
}

TEST(Journal, RotationAndPruneBySnapshotProgress) {
  TempDir dir("journal_rotate");
  JournalConfig cfg = journal_config(dir);
  cfg.commit_batch = 1;          // commit (and maybe rotate) per record
  cfg.segment_max_bytes = 260;   // header + ~3 frames
  JournalWriter writer(cfg);
  for (int i = 0; i < 12; ++i) writer.append(make_read(0.1 * i, 1, 1, 0.0));
  writer.commit();
  const std::size_t before = files_with_ext(dir.path, ".tbj").size();
  EXPECT_GE(before, 3u);

  // A snapshot covering seq <= 6 makes the early segments redundant.
  writer.prune(6);
  const std::size_t after = files_with_ext(dir.path, ".tbj").size();
  EXPECT_LT(after, before);

  // Everything past the prune frontier must still replay.
  std::vector<std::uint64_t> seqs;
  scan_journal(dir.str(), 6,
               [&](const JournalRecord& r) { seqs.push_back(r.seq); });
  ASSERT_FALSE(seqs.empty());
  EXPECT_EQ(seqs.back(), 12u);
  for (std::size_t i = 1; i < seqs.size(); ++i)
    EXPECT_EQ(seqs[i], seqs[i - 1] + 1);
}

TEST(Journal, HardSegmentCapBoundsDisk) {
  TempDir dir("journal_cap");
  JournalConfig cfg = journal_config(dir);
  cfg.commit_batch = 1;
  cfg.segment_max_bytes = 260;
  cfg.max_segments = 2;
  JournalWriter writer(cfg);
  for (int i = 0; i < 30; ++i) writer.append(make_read(0.1 * i, 1, 1, 0.0));
  writer.commit();
  writer.prune(0);  // nothing snapshotted — only the hard cap applies
  EXPECT_LE(files_with_ext(dir.path, ".tbj").size(), 2u);
  EXPECT_GT(writer.counters().journal_segments_pruned, 0u);
}

TEST(Journal, BitFlippedRecordIsSkippedAndCounted) {
  TempDir dir("journal_bitflip");
  {
    JournalWriter writer(journal_config(dir));
    for (int i = 0; i < 6; ++i) writer.append(make_read(0.1 * i, 1, 1, 0.0));
  }
  const auto segments = files_with_ext(dir.path, ".tbj");
  ASSERT_EQ(segments.size(), 1u);
  std::vector<std::uint8_t> bytes = read_file(segments[0]);
  // Flip one bit inside the first record's payload (24 B segment
  // header + 12 B frame header + a few bytes in).
  bytes[24 + 12 + 5] ^= 0x10;
  write_file(segments[0], bytes);

  std::vector<std::uint64_t> seqs;
  const JournalScanResult scan = scan_journal(
      dir.str(), 0, [&](const JournalRecord& r) { seqs.push_back(r.seq); });
  EXPECT_EQ(scan.counters.journal_records_corrupt, 1u);
  EXPECT_EQ(scan.delivered, 5u);
  ASSERT_EQ(seqs.size(), 5u);
  EXPECT_EQ(seqs.front(), 2u);  // record 1 skipped, scanner resynced
  EXPECT_EQ(seqs.back(), 6u);
}

TEST(Journal, TornTailIsSkippedAndCounted) {
  TempDir dir("journal_torn");
  {
    JournalWriter writer(journal_config(dir));
    for (int i = 0; i < 6; ++i) writer.append(make_read(0.1 * i, 1, 1, 0.0));
  }
  const auto segments = files_with_ext(dir.path, ".tbj");
  ASSERT_EQ(segments.size(), 1u);
  const auto size = fs::file_size(segments[0]);
  fs::resize_file(segments[0], size - 10);  // cut into the last frame

  const JournalScanResult scan =
      scan_journal(dir.str(), 0, [](const JournalRecord&) {});
  EXPECT_EQ(scan.delivered, 5u);
  EXPECT_EQ(scan.counters.journal_truncated_tails, 1u);
  EXPECT_EQ(scan.max_seq, 5u);
}

TEST(Journal, GarbageSegmentRejectedNotFatal) {
  TempDir dir("journal_garbage");
  {
    JournalWriter writer(journal_config(dir));
    writer.append(make_read(0.5, 1, 1, 0.0));
  }
  // A second "segment" of pure garbage with a valid-looking name.
  write_file(dir.path / "journal-00000000000000ff.tbj",
             std::vector<std::uint8_t>(64, 0x5A));

  const JournalScanResult scan =
      scan_journal(dir.str(), 0, [](const JournalRecord&) {});
  EXPECT_EQ(scan.delivered, 1u);
  EXPECT_EQ(scan.counters.journal_segments_rejected, 1u);
}

TEST(Journal, MissingDirectoryScansEmpty) {
  const JournalScanResult scan = scan_journal(
      "/nonexistent/tagbreathe-journal", 0, [](const JournalRecord&) {});
  EXPECT_EQ(scan.delivered, 0u);
  EXPECT_EQ(scan.max_seq, 0u);
}

TEST(Journal, ConfigValidation) {
  EXPECT_THROW(JournalConfig{}.validate(), std::invalid_argument);
  JournalConfig cfg;
  cfg.directory = "/tmp/x";
  cfg.commit_batch = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.commit_batch = 1;
  cfg.segment_max_bytes = 10;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Journal, InjectedCrashMidAppendWedgesWriter) {
  TempDir dir("journal_wedge");
  DurabilityHooks hooks;
  hooks.at_point = [](CrashPoint point) {
    if (point == CrashPoint::MidJournalAppend)
      throw SimulatedCrash("injected");
  };
  JournalConfig cfg = journal_config(dir);
  cfg.commit_batch = 2;
  JournalWriter writer(cfg, 1, &hooks);
  writer.append(make_read(0.1, 1, 1, 0.0));
  EXPECT_THROW(writer.append(make_read(0.2, 1, 1, 0.0)), SimulatedCrash);
  EXPECT_TRUE(writer.wedged());
  EXPECT_EQ(writer.last_committed_seq(), 0u);
  // Wedged writer refuses further work instead of repairing the tear.
  EXPECT_EQ(writer.append(make_read(0.3, 1, 1, 0.0)), 0u);

  // The interrupted batch leaves at most a prefix of intact frames on
  // disk; those may replay (at-least-once semantics) but the frame the
  // crash tore — and anything after it — must not.
  const JournalScanResult scan =
      scan_journal(dir.str(), 0, [](const JournalRecord&) {});
  EXPECT_LE(scan.delivered, 1u);
  EXPECT_LE(scan.max_seq, 1u);
}

// ---------------------------------------------------------------------------
// Snapshots

namespace {

/// A non-trivial SnapshotData: real pipeline + validator state built
/// from a short synthetic run.
SnapshotData make_snapshot_fixture(std::uint64_t last_seq) {
  SoakConfig soak;
  soak.n_users = 2;
  soak.tags_per_user = 2;
  soak.duration_s = 20.0;
  soak.pipeline.window_s = 10.0;
  soak.pipeline.warmup_s = 2.0;

  RealtimePipeline pipeline(soak.pipeline);
  IngestConfig ingest;
  ingest.monitored_users = {1, 2};
  ReadValidator validator(ingest);
  for (TagRead read : make_soak_population(soak)) {
    if (validator.admit(read).admitted) pipeline.push(read);
  }
  SnapshotData data;
  data.last_journal_seq = last_seq;
  data.now_s = pipeline.now_s();
  data.pipeline = pipeline.export_state();
  data.validator = validator.export_state();
  return data;
}

void expect_snapshot_equal(const SnapshotData& a, const SnapshotData& b) {
  EXPECT_EQ(a.last_journal_seq, b.last_journal_seq);
  EXPECT_EQ(a.now_s, b.now_s);
  EXPECT_EQ(a.pipeline.now_s, b.pipeline.now_s);
  EXPECT_EQ(a.pipeline.start_s, b.pipeline.start_s);
  EXPECT_EQ(a.pipeline.next_update_s, b.pipeline.next_update_s);
  EXPECT_EQ(a.pipeline.started, b.pipeline.started);
  ASSERT_EQ(a.pipeline.users.size(), b.pipeline.users.size());
  for (std::size_t i = 0; i < a.pipeline.users.size(); ++i) {
    EXPECT_EQ(a.pipeline.users[i].user_id, b.pipeline.users[i].user_id);
    EXPECT_EQ(a.pipeline.users[i].last_read_s, b.pipeline.users[i].last_read_s);
    EXPECT_EQ(a.pipeline.users[i].health, b.pipeline.users[i].health);
  }
  ASSERT_EQ(a.pipeline.demux.streams.size(), b.pipeline.demux.streams.size());
  for (std::size_t i = 0; i < a.pipeline.demux.streams.size(); ++i) {
    EXPECT_EQ(a.pipeline.demux.streams[i].reads.size(),
              b.pipeline.demux.streams[i].reads.size());
  }
  EXPECT_EQ(a.validator.any_admitted, b.validator.any_admitted);
  EXPECT_EQ(a.validator.last_admitted_s, b.validator.last_admitted_s);
  EXPECT_EQ(a.validator.streams.size(), b.validator.streams.size());
  EXPECT_EQ(a.validator.lru_order, b.validator.lru_order);
}

}  // namespace

TEST(Snapshot, CodecRoundTrip) {
  const SnapshotData data = make_snapshot_fixture(17);
  const std::vector<std::uint8_t> bytes = encode_snapshot(data);
  const SnapshotData back = decode_snapshot(bytes.data(), bytes.size());
  expect_snapshot_equal(data, back);
}

TEST(Snapshot, WriteLoadRoundTripAndRetention) {
  TempDir dir("snapshot_rt");
  SnapshotConfig cfg;
  cfg.directory = dir.str();
  cfg.keep = 2;
  cfg.fsync = false;
  SnapshotWriter writer(cfg);
  for (std::uint64_t seq = 1; seq <= 4; ++seq)
    writer.write(make_snapshot_fixture(seq * 10));
  EXPECT_EQ(writer.counters().snapshots_written, 4u);
  EXPECT_EQ(writer.counters().snapshots_pruned, 2u);
  EXPECT_EQ(files_with_ext(dir.path, ".tbs").size(), 2u);

  const SnapshotLoadReport report = load_newest_snapshot(dir.str());
  ASSERT_TRUE(report.data.has_value());
  EXPECT_EQ(report.data->last_journal_seq, 40u);
  EXPECT_TRUE(report.rejected.empty());
}

TEST(Snapshot, VersionMismatchRejectedWithFallback) {
  TempDir dir("snapshot_version");
  SnapshotConfig cfg;
  cfg.directory = dir.str();
  cfg.fsync = false;
  SnapshotWriter writer(cfg);
  writer.write(make_snapshot_fixture(11));
  writer.write(make_snapshot_fixture(22));

  // Patch the newest file to a future format version, fixing the header
  // CRC so *only* the version check can reject it.
  const auto files = files_with_ext(dir.path, ".tbs");
  ASSERT_EQ(files.size(), 2u);
  std::vector<std::uint8_t> bytes = read_file(files[1]);
  bytes[8] = 0x63;  // version = 99
  const std::uint32_t crc = common::crc32(bytes.data() + 8, 24);
  for (int i = 0; i < 4; ++i)
    bytes[32 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  write_file(files[1], bytes);

  EXPECT_THROW(
      {
        try {
          decode_snapshot(bytes.data(), bytes.size());
        } catch (const DurabilityError& e) {
          EXPECT_NE(std::string(e.what()).find("unsupported format version 99"),
                    std::string::npos)
              << e.what();
          throw;
        }
      },
      DurabilityError);

  const SnapshotLoadReport report = load_newest_snapshot(dir.str());
  ASSERT_TRUE(report.data.has_value());
  EXPECT_EQ(report.data->last_journal_seq, 11u);  // fell back to the older
  ASSERT_EQ(report.rejected.size(), 1u);
  EXPECT_NE(report.rejected[0].find("unsupported format version"),
            std::string::npos)
      << report.rejected[0];
  EXPECT_EQ(report.counters.snapshots_rejected, 1u);
}

TEST(Snapshot, SectionCrcMismatchRejectedWithFallback) {
  TempDir dir("snapshot_crc");
  SnapshotConfig cfg;
  cfg.directory = dir.str();
  cfg.fsync = false;
  SnapshotWriter writer(cfg);
  writer.write(make_snapshot_fixture(11));
  writer.write(make_snapshot_fixture(22));

  const auto files = files_with_ext(dir.path, ".tbs");
  ASSERT_EQ(files.size(), 2u);
  std::vector<std::uint8_t> bytes = read_file(files[1]);
  bytes[36 + 12 + 3] ^= 0x01;  // one bit inside the first section payload
  write_file(files[1], bytes);

  const SnapshotLoadReport report = load_newest_snapshot(dir.str());
  ASSERT_TRUE(report.data.has_value());
  EXPECT_EQ(report.data->last_journal_seq, 11u);
  ASSERT_EQ(report.rejected.size(), 1u);
  EXPECT_NE(report.rejected[0].find("CRC mismatch"), std::string::npos)
      << report.rejected[0];
}

TEST(Snapshot, TruncatedFileRejectedWithFallback) {
  TempDir dir("snapshot_trunc");
  SnapshotConfig cfg;
  cfg.directory = dir.str();
  cfg.fsync = false;
  SnapshotWriter writer(cfg);
  writer.write(make_snapshot_fixture(11));
  const std::string newest = writer.write(make_snapshot_fixture(22));
  fs::resize_file(newest, fs::file_size(newest) / 2);

  const SnapshotLoadReport report = load_newest_snapshot(dir.str());
  ASSERT_TRUE(report.data.has_value());
  EXPECT_EQ(report.data->last_journal_seq, 11u);
  EXPECT_EQ(report.rejected.size(), 1u);
}

TEST(Snapshot, CrashBeforeRenameLeavesPreviousIntact) {
  TempDir dir("snapshot_rename");
  SnapshotConfig cfg;
  cfg.directory = dir.str();
  cfg.fsync = false;

  {
    SnapshotWriter good(cfg);
    good.write(make_snapshot_fixture(11));
  }

  DurabilityHooks hooks;
  hooks.at_point = [](CrashPoint point) {
    if (point == CrashPoint::MidSnapshotRename)
      throw SimulatedCrash("injected");
  };
  SnapshotWriter writer(cfg, &hooks);
  EXPECT_THROW(writer.write(make_snapshot_fixture(22)), SimulatedCrash);
  EXPECT_TRUE(writer.wedged());
  EXPECT_THROW(writer.write(make_snapshot_fixture(33)), DurabilityError);

  // The orphaned temp file is ignored; the previous snapshot loads.
  EXPECT_EQ(files_with_ext(dir.path, ".tmp").size(), 1u);
  const SnapshotLoadReport report = load_newest_snapshot(dir.str());
  ASSERT_TRUE(report.data.has_value());
  EXPECT_EQ(report.data->last_journal_seq, 11u);
  EXPECT_TRUE(report.rejected.empty());
}

TEST(Snapshot, ConfigValidation) {
  EXPECT_THROW(SnapshotConfig{}.validate(), std::invalid_argument);
  SnapshotConfig cfg;
  cfg.directory = "/tmp/x";
  cfg.keep = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// State export/import semantics

TEST(StateRoundTrip, PipelineResumesIdenticalEventStream) {
  SoakConfig soak;
  soak.n_users = 2;
  soak.tags_per_user = 2;
  soak.duration_s = 60.0;
  soak.pipeline.window_s = 15.0;
  soak.pipeline.warmup_s = 5.0;
  const ReadStream reads = make_soak_population(soak);
  const double split_s = 30.0;

  std::vector<std::string> full_log;
  RealtimePipeline full(soak.pipeline, [&](const PipelineEvent& e) {
    full_log.push_back(format_soak_event(e));
  });
  PipelineState mid_state;
  std::size_t mark = 0;
  for (const TagRead& read : reads) {
    if (read.time_s >= split_s && mark == 0) {
      mid_state = full.export_state();
      mark = full_log.size();
    }
    full.push(read);
  }
  full.advance_to(soak.duration_s);
  ASSERT_GT(mark, 0u);

  std::vector<std::string> resumed_log;
  RealtimePipeline resumed(soak.pipeline, [&](const PipelineEvent& e) {
    resumed_log.push_back(format_soak_event(e));
  });
  resumed.import_state(std::move(mid_state));
  for (const TagRead& read : reads)
    if (read.time_s >= split_s) resumed.push(read);
  resumed.advance_to(soak.duration_s);

  const std::vector<std::string> expected(full_log.begin() +
                                              static_cast<std::ptrdiff_t>(mark),
                                          full_log.end());
  EXPECT_EQ(resumed_log, expected);
}

TEST(StateRoundTrip, ValidatorJudgesIdenticallyAfterRestore) {
  IngestConfig cfg;
  cfg.monitored_users = {1, 2};
  ReadValidator original(cfg);
  TagRead r1 = make_read(1.0, 1, 1, 0.5);
  ASSERT_TRUE(original.admit(r1).admitted);
  TagRead r2 = make_read(2.0, 2, 1, 0.7);
  ASSERT_TRUE(original.admit(r2).admitted);

  ReadValidator restored(cfg);
  restored.import_state(original.export_state());
  EXPECT_EQ(restored.tracked_users(), original.tracked_users());
  EXPECT_EQ(restored.last_admitted_s(), original.last_admitted_s());

  // Probe reads must get byte-identical verdicts from both.
  const TagRead probes[] = {
      make_read(2.0, 2, 1, 0.7),   // duplicate delivery
      make_read(1.9, 1, 1, 0.9),   // small regression: repaired
      make_read(1.0, 1, 1, 0.9),   // large regression: quarantined
      make_read(2.5, 3, 1, 0.1),   // unknown user
      make_read(3.0, 1, 1, 0.11),  // clean
  };
  for (const TagRead& probe : probes) {
    TagRead a = probe, b = probe;
    const auto va = original.admit(a);
    const auto vb = restored.admit(b);
    EXPECT_EQ(va.admitted, vb.admitted);
    EXPECT_EQ(va.repaired, vb.repaired);
    EXPECT_EQ(a.time_s, b.time_s);  // identical repair outcome
  }
}

TEST(StateRoundTrip, FreshValidatorStateHasOpenFrontier) {
  IngestConfig cfg;
  ReadValidator validator(cfg);
  // Export before any admission, import, and confirm the frontier is
  // still open (a read at t=0 must not be treated as a regression).
  ReadValidator restored(cfg);
  restored.import_state(validator.export_state());
  TagRead r = make_read(0.0, 1, 1, 0.5);
  EXPECT_TRUE(restored.admit(r).admitted);
}

// ---------------------------------------------------------------------------
// DurableMonitor recovery

namespace {

struct MonitorRunConfig {
  SoakConfig soak;
  DurabilityConfig durability;
  IngestConfig ingest;
};

MonitorRunConfig monitor_run_config(const TempDir& dir) {
  MonitorRunConfig cfg;
  cfg.soak.n_users = 2;
  cfg.soak.tags_per_user = 1;
  cfg.soak.duration_s = 60.0;
  cfg.soak.pipeline.window_s = 15.0;
  cfg.soak.pipeline.warmup_s = 5.0;
  cfg.durability.directory = dir.str();
  cfg.durability.snapshot_period_s = 10.0;
  cfg.durability.journal.commit_batch = 8;
  cfg.durability.snapshot.fsync = false;
  cfg.ingest.monitored_users = {1, 2};
  return cfg;
}

/// Drives `reads` with offer_s in [from_s, to_s) through the monitor on
/// the soak pump grid.
void drive_monitor(DurableMonitor& monitor, const ReadStream& reads,
                   double pump_period_s, double from_s, double to_s) {
  double next_pump = pump_period_s;
  while (next_pump <= from_s) next_pump += pump_period_s;
  for (const TagRead& read : reads) {
    if (read.time_s < from_s || read.time_s >= to_s) continue;
    while (read.time_s >= next_pump) {
      monitor.pump(next_pump);
      next_pump += pump_period_s;
    }
    monitor.offer(read, read.time_s);
  }
  monitor.pump(to_s);
}

}  // namespace

TEST(DurableMonitor, ColdStartThenRecoveryResumes) {
  TempDir dir("monitor_recover");
  const MonitorRunConfig cfg = monitor_run_config(dir);
  const ReadStream reads = make_soak_population(cfg.soak);

  std::size_t first_life_events = 0;
  {
    DurableMonitor monitor(cfg.durability, cfg.ingest, cfg.soak.pipeline,
                           [&](const PipelineEvent&) { ++first_life_events; });
    EXPECT_FALSE(monitor.recovery().snapshot_loaded);
    EXPECT_EQ(monitor.recovery().replayed_reads, 0u);
    // Stop between checkpoints (period 10 s): the final snapshot lands
    // at the t=40 pump, so the reads in (40, 44] exist only as a
    // committed journal tail and must come back via replay.
    drive_monitor(monitor, reads, cfg.soak.pump_period_s, 0.0, 44.0);
    monitor.flush();
    EXPECT_GT(monitor.counters().journal_records_appended, 0u);
    EXPECT_GT(monitor.counters().snapshots_written, 0u);
  }
  ASSERT_GT(first_life_events, 0u);

  std::size_t second_life_events = 0;
  DurableMonitor monitor(cfg.durability, cfg.ingest, cfg.soak.pipeline,
                         [&](const PipelineEvent&) { ++second_life_events; });
  EXPECT_TRUE(monitor.recovery().snapshot_loaded);
  EXPECT_GT(monitor.recovery().snapshot_seq, 0u);
  EXPECT_GT(monitor.recovery().replayed_reads, 0u);
  EXPECT_EQ(monitor.recovery().corrupt_records_skipped, 0u);
  EXPECT_GT(monitor.recovery().resume_time_s, 40.0);
  EXPECT_FALSE(monitor.recovering());

  // Sequence numbering continues: new appends never reuse replayed seqs.
  const std::uint64_t seq_floor =
      monitor.recovery().snapshot_seq + monitor.recovery().replayed_reads;
  drive_monitor(monitor, reads, cfg.soak.pump_period_s, 44.0,
                cfg.soak.duration_s);
  monitor.flush();
  EXPECT_GT(monitor.counters().journal_records_appended, 0u);
  EXPECT_GE(monitor.frontend().validation().admitted,
            monitor.recovery().replayed_reads);
  EXPECT_GT(second_life_events, 0u);
  (void)seq_floor;
  EXPECT_GT(monitor.pipeline().latest_size(), 0u);
}

TEST(DurableMonitor, CorruptJournalRecordsSkippedOnRecovery) {
  TempDir dir("monitor_corrupt");
  MonitorRunConfig cfg = monitor_run_config(dir);
  cfg.durability.snapshot_period_s = 1000.0;  // journal-only recovery
  const ReadStream reads = make_soak_population(cfg.soak);

  {
    DurableMonitor monitor(cfg.durability, cfg.ingest, cfg.soak.pipeline,
                           nullptr);
    drive_monitor(monitor, reads, cfg.soak.pump_period_s, 0.0, 20.0);
    monitor.flush();
  }
  const auto segments =
      files_with_ext(dir.path / "journal", ".tbj");
  ASSERT_FALSE(segments.empty());
  std::vector<std::uint8_t> bytes = read_file(segments[0]);
  bytes[24 + 12 + 3] ^= 0x40;  // corrupt the first record
  write_file(segments[0], bytes);

  DurableMonitor monitor(cfg.durability, cfg.ingest, cfg.soak.pipeline,
                         nullptr);
  EXPECT_FALSE(monitor.recovery().snapshot_loaded);
  EXPECT_EQ(monitor.recovery().corrupt_records_skipped, 1u);
  EXPECT_GT(monitor.recovery().replayed_reads, 0u);
}

TEST(DurableMonitor, ConfigValidation) {
  EXPECT_THROW(DurabilityConfig{}.validate(), std::invalid_argument);
  DurabilityConfig cfg;
  cfg.directory = "/tmp/x";
  cfg.snapshot_period_s = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.snapshot_period_s = 30.0;
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_EQ(cfg.resolved_journal().directory, "/tmp/x/journal");
  EXPECT_EQ(cfg.resolved_snapshot().directory, "/tmp/x/snapshots");
}

// ---------------------------------------------------------------------------
// Crash-injection soak

namespace {

CrashSoakConfig crash_soak_config(const TempDir& dir, CrashPoint point) {
  CrashSoakConfig cfg;
  cfg.soak.n_users = 2;
  cfg.soak.tags_per_user = 1;
  cfg.soak.duration_s = 150.0;
  cfg.soak.pipeline.window_s = 15.0;
  cfg.soak.pipeline.warmup_s = 5.0;
  cfg.durability.directory = dir.str();
  cfg.durability.snapshot_period_s = 10.0;
  cfg.durability.journal.commit_batch = 32;
  cfg.durability.snapshot.fsync = false;  // keep the suite fast
  cfg.point = point;
  cfg.crash_after_s = 60.0;
  cfg.converge_margin_s = 10.0;
  return cfg;
}

}  // namespace

TEST(CrashSoak, EveryKillPointRecoversAndConverges) {
  for (std::size_t p = 0; p < kCrashPointCount; ++p) {
    const CrashPoint point = static_cast<CrashPoint>(p);
    TempDir dir(std::string("crash_") + std::to_string(p));
    const CrashSoakReport report =
        run_crash_soak(crash_soak_config(dir, point));
    EXPECT_TRUE(report.crashed) << crash_point_name(point);
    EXPECT_TRUE(report.recovered) << crash_point_name(point);
    EXPECT_GE(report.crash_time_s, 60.0) << crash_point_name(point);
    EXPECT_GT(report.compared_events, 0u) << crash_point_name(point);
    testutil::expect_no_violations(report.violations,
                                   std::string(crash_point_name(point)) +
                                       ": ");
    EXPECT_TRUE(report.ok()) << crash_point_name(point);
  }
}

TEST(CrashSoak, MidAppendCrashLeavesCountedTornTail) {
  TempDir dir("crash_torn");
  const CrashSoakReport report =
      run_crash_soak(crash_soak_config(dir, CrashPoint::MidJournalAppend));
  ASSERT_TRUE(report.crashed);
  ASSERT_TRUE(report.recovered);
  // The interrupted batch leaves a torn frame (or, if the cut landed
  // exactly between frames, just a shorter tail); either way recovery
  // must have scanned segments and never counted a fatal error.
  EXPECT_GT(report.counters.journal_segments_scanned, 0u);
  EXPECT_TRUE(report.ok())
      << (report.violations.empty() ? "" : report.violations.front());
}

TEST(CrashSoak, ConfigValidation) {
  CrashSoakConfig cfg;
  cfg.durability.directory = "/tmp/x";
  cfg.crash_after_s = cfg.soak.duration_s + 1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Durable soak

TEST(DurableSoak, CleanRunJournalsEveryAdmittedRead) {
  TempDir dir("durable_soak");
  SoakConfig soak;
  soak.n_users = 2;
  soak.tags_per_user = 1;
  soak.duration_s = 60.0;
  soak.pipeline.window_s = 15.0;
  soak.pipeline.warmup_s = 5.0;
  DurabilityConfig durability;
  durability.directory = dir.str();
  durability.snapshot_period_s = 15.0;
  durability.snapshot.fsync = false;

  const SoakReport report = run_durable_soak(soak, durability);
  testutil::expect_no_violations(report.violations);
  testutil::expect_queue_conservation(report.queue,
                                      soak.ingest.queue_capacity);
  EXPECT_GT(report.events, 0u);
  EXPECT_GT(report.durability.journal_records_appended, 0u);
  EXPECT_EQ(report.durability.journal_records_appended,
            report.validation.admitted);
  EXPECT_GE(report.durability.snapshots_written, 2u);
  EXPECT_GT(report.durability.journal_commits, 0u);
}

// ---------------------------------------------------------------------------
// ReadRecorder flush (satellite: no more flush-only-on-destruction)

TEST(ReadRecorder, PeriodicAndExplicitFlush) {
  TempDir dir("recorder");
  const fs::path path = dir.path / "capture.csv";
  ReadRecorder recorder(path.string(), 2);
  recorder.record(make_read(0.1, 1, 1, 0.5));
  recorder.record(make_read(0.2, 1, 1, 0.6));
  // flush_every=2: both rows must be on disk while the recorder lives.
  EXPECT_EQ(load_reads_csv(path.string()).size(), 2u);

  recorder.record(make_read(0.3, 1, 1, 0.7));
  recorder.flush();
  const ReadStream loaded = load_reads_csv(path.string());
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[2].time_s, 0.3);
  EXPECT_EQ(recorder.recorded(), 3u);
}

// ---------------------------------------------------------------------------
// load_reads_csv fuzz (satellite: malformed capture files)

namespace {

std::string valid_capture_csv(std::size_t rows) {
  ReadStream reads;
  for (std::size_t i = 0; i < rows; ++i)
    reads.push_back(make_read(0.1 * static_cast<double>(i), 1, 1,
                              0.01 * static_cast<double>(i)));
  std::ostringstream out;
  save_reads_csv(out, reads);
  return out.str();
}

/// Error must carry a line number ("line N: ...").
void expect_line_numbered_error(const std::string& csv,
                                const std::string& expect_line) {
  std::istringstream in(csv);
  try {
    load_reads_csv(in);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(expect_line), std::string::npos)
        << e.what();
  }
}

}  // namespace

TEST(LoadReadsCsvFuzz, TruncatedLine) {
  std::string csv = valid_capture_csv(3);
  // Cut the final row in half (drop the trailing cells + newline).
  csv.resize(csv.rfind(',') - 10);
  expect_line_numbered_error(csv + "\n", "line 4");
}

TEST(LoadReadsCsvFuzz, GarbageFields) {
  const std::string csv = valid_capture_csv(1) +
                          "zig,zag,zog,1,2,3,4,5\n";
  expect_line_numbered_error(csv, "line 3");
}

TEST(LoadReadsCsvFuzz, DuplicateHeaderRow) {
  const std::string csv =
      valid_capture_csv(1) + std::string(kReplayCsvHeader) + "\n";
  // The repeated header parses as a row whose first cell is not a
  // number — a line-numbered error, not an accepted phantom read.
  expect_line_numbered_error(csv, "line 3");
}

TEST(LoadReadsCsvFuzz, EmbeddedNulBytes) {
  std::string csv = valid_capture_csv(2);
  const std::size_t second_row = csv.find('\n', csv.find('\n') + 1) + 1;
  ASSERT_LT(second_row, csv.size());
  csv[second_row] = '\0';  // first byte of the last row
  expect_line_numbered_error(csv, "line 3");
}

TEST(LoadReadsCsvFuzz, EmptyAndHeaderlessInput) {
  {
    std::istringstream in("");
    EXPECT_THROW(load_reads_csv(in), std::runtime_error);
  }
  {
    std::istringstream in("not,a,capture\n1,2,3\n");
    EXPECT_THROW(load_reads_csv(in), std::runtime_error);
  }
}

TEST(LoadReadsCsvFuzz, SeededRandomMutationsNeverCrash) {
  const std::string base = valid_capture_csv(8);
  common::Rng rng(0xF00DF00Dull);
  std::size_t parsed = 0, refused = 0;
  for (int iter = 0; iter < 300; ++iter) {
    std::string csv = base;
    const int flips = rng.uniform_int(1, 4);
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(csv.size()) - 1));
      csv[pos] = static_cast<char>(rng.uniform_int(0, 255));
    }
    std::istringstream in(csv);
    try {
      load_reads_csv(in);
      ++parsed;  // mutation landed somewhere harmless
    } catch (const std::runtime_error&) {
      ++refused;  // must be a clean, typed refusal — never UB or abort
    }
  }
  EXPECT_EQ(parsed + refused, 300u);
  EXPECT_GT(refused, 0u);
}

// ---------------------------------------------------------------------------
// Names stay total (logging must never invoke UB on corrupt values)

TEST(Durability, CrashPointNamesAreTotal) {
  for (std::size_t p = 0; p < kCrashPointCount; ++p)
    EXPECT_NE(std::string(crash_point_name(static_cast<CrashPoint>(p))),
              "unknown-crash-point");
  EXPECT_EQ(std::string(crash_point_name(static_cast<CrashPoint>(250))),
            "unknown-crash-point");
}
