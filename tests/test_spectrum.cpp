// Unit + property tests: spectral analysis (periodogram, peak searches,
// ACF fundamental, FFT band filters, Goertzel).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "signal/filters.hpp"
#include "signal/spectrum.hpp"

namespace tagbreathe::signal {
namespace {

using common::kTwoPi;

std::vector<double> sine(double freq_hz, double fs, std::size_t n,
                         double amplitude = 1.0, double phase = 0.0) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = amplitude *
           std::sin(kTwoPi * freq_hz * static_cast<double>(i) / fs + phase);
  return x;
}

void add_noise(std::vector<double>& x, double sigma, std::uint64_t seed) {
  common::Rng rng(seed);
  for (double& v : x) v += rng.normal(0.0, sigma);
}

// --- periodogram -------------------------------------------------------------

TEST(Periodogram, PeakAtToneFrequency) {
  const auto x = sine(0.25, 20.0, 500);
  const auto bins = periodogram(x, 20.0);
  std::size_t best = 0;
  for (std::size_t k = 1; k < bins.size(); ++k)
    if (bins[k].power > bins[best].power) best = k;
  EXPECT_NEAR(bins[best].frequency_hz, 0.25, 0.05);
}

TEST(Periodogram, AmplitudeCalibration) {
  // Coherent-gain normalisation: a unit sine exactly on a bin puts
  // A^2/2 = 0.5 in the centre bin; the Hann window leaks A^2/8 into each
  // neighbour (W(+-1) = sum(w)/2), so the 3-bin region sums to 0.75.
  const auto x = sine(2.0, 20.0, 1000);  // bin 100 exactly
  const auto bins = periodogram(x, 20.0, WindowType::Hann);
  double centre = 0.0, region = 0.0;
  for (const auto& b : bins) {
    if (std::abs(b.frequency_hz - 2.0) < 1e-9) centre = b.power;
    if (std::abs(b.frequency_hz - 2.0) < 0.05) region += b.power;
  }
  EXPECT_NEAR(centre, 0.5, 0.02);
  EXPECT_NEAR(region, 0.75, 0.03);
}

TEST(Periodogram, EmptyAndErrors) {
  EXPECT_TRUE(periodogram(std::vector<double>{}, 20.0).empty());
  EXPECT_THROW(periodogram(std::vector<double>{1.0}, 0.0),
               std::invalid_argument);
}

// --- dominant frequency -------------------------------------------------------

TEST(DominantFrequency, InterpolatesOffBinTone) {
  // 0.213 Hz does not land on the 20/600 = 0.0333 Hz grid.
  const auto x = sine(0.213, 20.0, 600);
  const double f = dominant_frequency(x, 20.0, 0.05, 1.0);
  EXPECT_NEAR(f, 0.213, 0.01);
}

TEST(DominantFrequency, RespectsBand) {
  auto x = sine(0.3, 20.0, 600);
  const auto strong = sine(3.0, 20.0, 600, 5.0);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += strong[i];
  // Band excludes the strong 3 Hz tone.
  EXPECT_NEAR(dominant_frequency(x, 20.0, 0.05, 1.0), 0.3, 0.02);
  // A band with no bins at all (beyond Nyquist) yields 0.
  EXPECT_EQ(dominant_frequency(x, 20.0, 10.5, 11.0), 0.0);
}

TEST(DominantFrequencyWhitened, FindsToneOverRandomWalk) {
  common::Rng rng(5);
  std::vector<double> x(1200);
  double walk = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    walk += rng.normal(0.0, 0.02);
    x[i] = walk + 0.05 * std::sin(kTwoPi * 0.3 * static_cast<double>(i) / 20.0);
  }
  detrend_linear(x);
  // Plain search is captured by the walk's low-frequency power...
  const double plain = dominant_frequency(x, 20.0, 0.05, 0.67);
  // ...whitened search finds the real oscillation.
  const double whitened = dominant_frequency_whitened(x, 20.0, 0.05, 0.67);
  EXPECT_NEAR(whitened, 0.3, 0.05);
  (void)plain;  // plain may or may not fail; whitened must not
}

// --- significant peak search ----------------------------------------------------

TEST(DominantFrequencySignificant, FindsWeakToneInColoredNoise) {
  common::Rng rng(6);
  std::vector<double> x(2400);
  double walk = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    walk += rng.normal(0.0, 0.003);
    x[i] = walk + rng.normal(0.0, 0.002) +
           0.01 * std::sin(kTwoPi * 0.22 * static_cast<double>(i) / 20.0);
  }
  detrend_linear(x);
  const double f = dominant_frequency_significant(x, 20.0, 0.075, 0.67);
  EXPECT_NEAR(f, 0.22, 0.05);
}

TEST(DominantFrequencySignificant, PrefersFundamentalOverHarmonic) {
  // Asymmetric waveform: fundamental 0.2 Hz plus a strong 0.4 Hz harmonic.
  std::vector<double> x(2400);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double t = static_cast<double>(i) / 20.0;
    x[i] = std::sin(kTwoPi * 0.2 * t) + 0.6 * std::sin(kTwoPi * 0.4 * t);
  }
  add_noise(x, 0.05, 7);
  const double f = dominant_frequency_significant(x, 20.0, 0.075, 0.67);
  EXPECT_NEAR(f, 0.2, 0.03);
}

// --- autocorrelation fundamental -------------------------------------------------

TEST(AcfFundamental, ExactOnCleanSine) {
  const auto x = sine(0.25, 20.0, 1200);
  const double f = autocorrelation_fundamental(x, 20.0, 0.075, 0.67);
  EXPECT_NEAR(f, 0.25, 0.005);
}

class AcfSweep : public ::testing::TestWithParam<double> {};

TEST_P(AcfSweep, RecoversRateAcrossBand) {
  const double f_true = GetParam();
  auto x = sine(f_true, 20.0, 2400);
  // Add the 2nd harmonic (asymmetric breathing) and noise.
  const auto h = sine(2.0 * f_true, 20.0, 2400, 0.4, 0.7);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += h[i];
  add_noise(x, 0.3, 17 + static_cast<std::uint64_t>(f_true * 100));
  const double f = autocorrelation_fundamental(x, 20.0, 0.075, 0.67);
  EXPECT_NEAR(f, f_true, 0.04 * f_true + 0.01) << "f_true=" << f_true;
}

INSTANTIATE_TEST_SUITE_P(BreathingBand, AcfSweep,
                         ::testing::Values(0.085, 0.1, 0.1667, 0.25, 0.333,
                                           0.45, 0.6));

TEST(AcfFundamental, ResolvesPeriodMultipleToSmallestLag) {
  // A clean periodic signal has ACF peaks at T, 2T, 3T...; the estimator
  // must return 1/T, not 1/(2T).
  const auto x = sine(0.3, 20.0, 2400);
  const double f = autocorrelation_fundamental(x, 20.0, 0.075, 0.67);
  EXPECT_NEAR(f, 0.3, 0.01);
}

TEST(AcfFundamental, ReturnsZeroOnPureNoiseSometimesButNeverThrows) {
  common::Rng rng(19);
  std::vector<double> x(600);
  for (auto& v : x) v = rng.normal();
  const double f = autocorrelation_fundamental(x, 20.0, 0.075, 0.67);
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, 0.7);
}

TEST(AcfFundamental, ErrorsAndEdgeCases) {
  EXPECT_THROW(autocorrelation_fundamental(std::vector<double>(100), 20.0,
                                           0.5, 0.2),
               std::invalid_argument);
  EXPECT_EQ(autocorrelation_fundamental(std::vector<double>(4), 20.0, 0.1,
                                        0.5),
            0.0);
  // All-zero signal: r0 = 0.
  EXPECT_EQ(autocorrelation_fundamental(std::vector<double>(256, 0.0), 20.0,
                                        0.1, 0.5),
            0.0);
}

// --- FFT band filters -----------------------------------------------------------

TEST(FftLowpass, RemovesHighFrequencyKeepsLow) {
  auto x = sine(0.2, 20.0, 800);
  const auto hf = sine(3.0, 20.0, 800, 0.8);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += hf[i];
  const auto y = fft_lowpass(x, 20.0, 0.67);
  const auto clean = sine(0.2, 20.0, 800);
  double err = 0.0;
  for (std::size_t i = 50; i < 750; ++i)
    err = std::max(err, std::abs(y[i] - clean[i]));
  EXPECT_LT(err, 0.05);
}

TEST(FftLowpass, RemovesDcWhenAsked) {
  std::vector<double> x(400, 5.0);
  const auto y = fft_lowpass(x, 20.0, 0.67, /*remove_dc=*/true);
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-9);
  const auto z = fft_lowpass(x, 20.0, 0.67, /*remove_dc=*/false);
  for (double v : z) EXPECT_NEAR(v, 5.0, 1e-9);
}

TEST(FftBandpass, SelectsBand) {
  auto x = sine(0.05, 20.0, 1200, 2.0);   // below band
  const auto mid = sine(0.3, 20.0, 1200);  // in band
  const auto high = sine(1.5, 20.0, 1200, 2.0);  // above band
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += mid[i] + high[i];
  const auto y = fft_bandpass(x, 20.0, 0.1, 0.67);
  const auto clean = sine(0.3, 20.0, 1200);
  for (std::size_t i = 100; i < 1100; ++i)
    EXPECT_NEAR(y[i], clean[i], 0.1) << i;
}

TEST(FftBandpass, ArgumentValidation) {
  std::vector<double> x(16, 0.0);
  EXPECT_THROW(fft_bandpass(x, 20.0, 0.5, 0.4), std::invalid_argument);
  EXPECT_THROW(fft_lowpass(x, 20.0, -1.0), std::invalid_argument);
  EXPECT_THROW(fft_lowpass(x, 0.0, 0.5), std::invalid_argument);
}

// --- Goertzel --------------------------------------------------------------------

TEST(Goertzel, MatchesFftBinPower) {
  const auto x = sine(2.0, 20.0, 400);
  // Bin power of a unit sine at an exact bin: (N/2)^2 / N^2 = 1/4.
  const double p = goertzel_power(x, 20.0, 2.0);
  EXPECT_NEAR(p, 0.25, 0.01);
  // Power at a far-away bin should be tiny.
  EXPECT_LT(goertzel_power(x, 20.0, 7.0), 1e-6);
}

// --- band power ratio ---------------------------------------------------------------

TEST(BandPowerRatio, ConcentratedToneScoresHigh) {
  const auto x = sine(0.25, 20.0, 1000);
  EXPECT_GT(band_power_ratio(x, 20.0, 0.1, 0.5), 0.95);
  EXPECT_LT(band_power_ratio(x, 20.0, 1.0, 5.0), 0.05);
}

TEST(BandPowerRatio, WhiteNoiseIsProportionalToBandwidth) {
  common::Rng rng(23);
  std::vector<double> x(4000);
  for (auto& v : x) v = rng.normal();
  // [0, 10] Hz total; [1, 2] covers ~10%.
  const double r = band_power_ratio(x, 20.0, 1.0, 2.0);
  EXPECT_NEAR(r, 0.1, 0.04);
}

}  // namespace
}  // namespace tagbreathe::signal
