// Unit tests: multi-tag fusion (Eqs. 6-7) and breath-signal extraction.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/breath_extractor.hpp"
#include "core/fusion.hpp"

namespace tagbreathe::core {
namespace {

using common::kTwoPi;
using signal::TimedSample;

// --- fusion -------------------------------------------------------------

TEST(Fusion, BinsAndIntegrates) {
  // One stream, deltas landing in known bins.
  std::vector<std::vector<TimedSample>> streams{{
      {0.01, 1.0}, {0.03, 2.0},  // bin 0
      {0.06, 3.0},               // bin 1
      {0.16, 4.0},               // bin 3
  }};
  FusionConfig cfg;
  cfg.bin_s = 0.05;
  const auto fused = fuse_streams(streams, 0.0, 0.2, cfg);
  ASSERT_EQ(fused.track.size(), 5u);
  EXPECT_DOUBLE_EQ(fused.track[0].value, 3.0);   // 1+2
  EXPECT_DOUBLE_EQ(fused.track[1].value, 6.0);   // +3
  EXPECT_DOUBLE_EQ(fused.track[2].value, 6.0);   // empty bin holds
  EXPECT_DOUBLE_EQ(fused.track[3].value, 10.0);  // +4
  EXPECT_EQ(fused.bin_counts[0], 2u);
  EXPECT_EQ(fused.bin_counts[2], 0u);
  EXPECT_DOUBLE_EQ(fused.sample_rate_hz(), 20.0);
}

TEST(Fusion, SumsAcrossStreams) {
  std::vector<std::vector<TimedSample>> streams{
      {{0.02, 1.0}}, {{0.03, 2.0}}, {{0.04, 3.0}}};
  const auto fused = fuse_streams(streams, 0.0, 0.05, FusionConfig{});
  ASSERT_FALSE(fused.track.empty());
  EXPECT_DOUBLE_EQ(fused.track[0].value, 6.0);
  EXPECT_EQ(fused.bin_counts[0], 3u);
}

TEST(Fusion, WeightsApply) {
  std::vector<std::vector<TimedSample>> streams{{{0.02, 1.0}},
                                                {{0.03, 1.0}}};
  FusionConfig cfg;
  cfg.weights = {2.0, 0.5};
  cfg.align_signs = false;
  const auto fused = fuse_streams(streams, 0.0, 0.05, cfg);
  EXPECT_DOUBLE_EQ(fused.track[0].value, 2.5);
  cfg.weights = {1.0};
  EXPECT_THROW(fuse_streams(streams, 0.0, 0.05, cfg),
               std::invalid_argument);
}

TEST(Fusion, AutoSpanCoversAllStreams) {
  std::vector<std::vector<TimedSample>> streams{{{1.0, 0.1}, {2.0, 0.1}},
                                                {{0.5, 0.1}, {3.0, 0.1}}};
  const auto fused = fuse_streams(streams);
  EXPECT_DOUBLE_EQ(fused.t0, 0.5);
  EXPECT_GE(fused.track.back().time_s, 3.0);
}

TEST(Fusion, EmptyInputs) {
  std::vector<std::vector<TimedSample>> none;
  EXPECT_TRUE(fuse_streams(none).track.empty());
  std::vector<std::vector<TimedSample>> empty_streams{{}, {}};
  EXPECT_TRUE(fuse_streams(empty_streams).track.empty());
  FusionConfig zero_bin;
  zero_bin.bin_s = 0.0;
  EXPECT_THROW(fuse_streams(none, 0.0, 1.0, zero_bin),
               std::invalid_argument);
}

std::vector<TimedSample> sine_deltas(double freq, double amp, double fs,
                                     double duration, double sign,
                                     std::uint64_t noise_seed = 0,
                                     double noise = 0.0) {
  // Deltas of amp*sin(2*pi*f*t): consecutive differences.
  common::Rng rng(noise_seed + 1);
  std::vector<TimedSample> out;
  double prev = 0.0;
  for (double t = 1.0 / fs; t < duration; t += 1.0 / fs) {
    const double v = sign * amp * std::sin(kTwoPi * freq * t);
    double d = v - prev;
    prev = v;
    if (noise > 0.0) d += rng.normal(0.0, noise);
    out.push_back({t, d});
  }
  return out;
}

TEST(Fusion, SignAlignmentFlipsInvertedStream) {
  // Stream 2 observes the same motion with opposite radial sign; aligned
  // fusion must recover ~2x amplitude rather than cancelling.
  std::vector<std::vector<TimedSample>> streams{
      sine_deltas(0.2, 0.005, 30.0, 30.0, +1.0),
      sine_deltas(0.2, 0.005, 30.0, 30.0, -1.0)};
  FusionConfig aligned;
  aligned.align_signs = true;
  FusionConfig naive;
  naive.align_signs = false;

  auto amplitude = [](const FusedTrack& fused) {
    double peak = 0.0;
    double mean = 0.0;
    for (const auto& s : fused.track) mean += s.value;
    mean /= static_cast<double>(fused.track.size());
    for (const auto& s : fused.track)
      peak = std::max(peak, std::abs(s.value - mean));
    return peak;
  };
  const double a_aligned = amplitude(fuse_streams(streams, aligned));
  const double a_naive = amplitude(fuse_streams(streams, naive));
  EXPECT_GT(a_aligned, 0.008);  // ~2x 5mm
  EXPECT_LT(a_naive, 0.002);    // cancellation
}

TEST(Fusion, SignAlignmentLeavesCoherentStreamsAlone) {
  std::vector<std::vector<TimedSample>> streams{
      sine_deltas(0.2, 0.005, 30.0, 30.0, +1.0, 1, 1e-4),
      sine_deltas(0.2, 0.005, 30.0, 30.0, +1.0, 2, 1e-4)};
  FusionConfig aligned;
  const auto fused = fuse_streams(streams, aligned);
  double peak = 0.0;
  for (const auto& s : fused.track) peak = std::max(peak, std::abs(s.value));
  EXPECT_GT(peak, 0.008);  // constructive
}

// --- extractor ------------------------------------------------------------

std::vector<TimedSample> uniform_track(
    const std::function<double(double)>& f, double fs, double duration) {
  std::vector<TimedSample> out;
  for (double t = 0.0; t < duration; t += 1.0 / fs) out.push_back({t, f(t)});
  return out;
}

TEST(Extractor, RecoversSineAndRejectsHighFrequency) {
  const auto track = uniform_track(
      [](double t) {
        return 0.01 * std::sin(kTwoPi * 0.25 * t) +
               0.02 * std::sin(kTwoPi * 3.0 * t);  // out of band
      },
      20.0, 60.0);
  BreathExtractor extractor;
  const auto breath = extractor.extract(track, 20.0);
  ASSERT_EQ(breath.samples.size(), track.size());
  double err = 0.0;
  for (std::size_t i = 100; i + 100 < breath.samples.size(); ++i) {
    const double truth =
        0.01 * std::sin(kTwoPi * 0.25 * breath.samples[i].time_s);
    err = std::max(err, std::abs(breath.samples[i].value - truth));
  }
  EXPECT_LT(err, 0.002);
}

TEST(Extractor, RemovesLinearDrift) {
  const auto track = uniform_track(
      [](double t) { return 0.01 * std::sin(kTwoPi * 0.2 * t) + 0.002 * t; },
      20.0, 60.0);
  BreathExtractor extractor;
  const auto breath = extractor.extract(track, 20.0);
  // Without drift the signal is symmetric around zero.
  double mean = 0.0;
  for (const auto& s : breath.samples) mean += s.value;
  mean /= static_cast<double>(breath.samples.size());
  EXPECT_NEAR(mean, 0.0, 5e-4);
}

TEST(Extractor, FirPathMatchesFftPathOnCleanSignal) {
  const auto track = uniform_track(
      [](double t) { return 0.01 * std::sin(kTwoPi * 0.2 * t); }, 20.0,
      60.0);
  ExtractorConfig fft_cfg;
  fft_cfg.filter = FilterKind::FftLowpass;
  ExtractorConfig fir_cfg;
  fir_cfg.filter = FilterKind::FirLowpass;
  const auto a = BreathExtractor(fft_cfg).extract(track, 20.0);
  const auto b = BreathExtractor(fir_cfg).extract(track, 20.0);
  double max_diff = 0.0;
  for (std::size_t i = 200; i + 200 < a.samples.size(); ++i)
    max_diff = std::max(max_diff,
                        std::abs(a.samples[i].value - b.samples[i].value));
  EXPECT_LT(max_diff, 0.002);
}

TEST(Extractor, AdaptiveBandSuppressesOutOfBandNoisePeak) {
  // Signal at 0.2 Hz plus a strong interferer at 0.55 Hz: the adaptive
  // band (0.12-0.30 Hz) removes the interferer entirely; the fixed band
  // keeps it.
  const auto track = uniform_track(
      [](double t) {
        return 0.01 * std::sin(kTwoPi * 0.2 * t) +
               0.004 * std::sin(kTwoPi * 0.55 * t);
      },
      20.0, 120.0);
  ExtractorConfig adaptive;
  adaptive.adaptive_band = true;
  ExtractorConfig fixed;
  fixed.adaptive_band = false;
  const auto a = BreathExtractor(adaptive).extract(track, 20.0);
  const auto f = BreathExtractor(fixed).extract(track, 20.0);
  // Residual at 0.55 Hz measured by correlating with that tone.
  auto tone_power = [](const BreathSignal& sig, double freq) {
    double re = 0.0, im = 0.0;
    for (const auto& s : sig.samples) {
      re += s.value * std::cos(kTwoPi * freq * s.time_s);
      im += s.value * std::sin(kTwoPi * freq * s.time_s);
    }
    return re * re + im * im;
  };
  EXPECT_LT(tone_power(a, 0.55), 0.01 * tone_power(f, 0.55));
  // The fundamental survives in both.
  EXPECT_GT(tone_power(a, 0.2), 0.5 * tone_power(f, 0.2));
}

TEST(Extractor, ShortTracksYieldEmptySignal) {
  BreathExtractor extractor;
  std::vector<TimedSample> tiny{{0.0, 1.0}, {0.05, 2.0}};
  EXPECT_TRUE(extractor.extract(tiny, 20.0).samples.empty());
}

TEST(Extractor, ConfigValidation) {
  ExtractorConfig bad;
  bad.cutoff_hz = 0.0;
  EXPECT_THROW(BreathExtractor{bad}, std::invalid_argument);
  bad = ExtractorConfig{};
  bad.low_cut_hz = 1.0;  // >= cutoff
  EXPECT_THROW(BreathExtractor{bad}, std::invalid_argument);
  BreathExtractor ok;
  std::vector<TimedSample> track(100, TimedSample{});
  EXPECT_THROW(ok.extract(track, 0.0), std::invalid_argument);
}

TEST(Extractor, FilterKindNames) {
  EXPECT_STREQ(filter_kind_name(FilterKind::FftLowpass), "fft-lowpass");
  EXPECT_STREQ(filter_kind_name(FilterKind::FirLowpass), "fir-lowpass");
}

}  // namespace
}  // namespace tagbreathe::core
