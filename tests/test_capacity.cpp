// Capacity engineering (ISSUE 10): the FlatMap open-addressing registry
// and SlabArena slab allocator that replaced the std::map user tables,
// plus the determinism gates that prove the swap is invisible at the
// byte level — randomized property tests against a std::map reference,
// generation-handle use-after-free detection, ASan poisoning of freed
// slots, ordered-iteration equivalence under shuffled insertion, the
// explicit eviction tie-break, a TSan-raced flat plan-cache lookup, and
// chaos-soak event-log hashes pinned to their pre-swap golden values.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/flat_map.hpp"
#include "common/slab_arena.hpp"
#include "core/chaos.hpp"
#include "core/demux.hpp"
#include "core/pipeline.hpp"
#include "fleet/fleet_soak.hpp"
#include "signal/fft.hpp"

#if defined(TAGBREATHE_ASAN)
#include <sanitizer/asan_interface.h>
#endif

using namespace tagbreathe;

namespace {

core::TagRead make_read(std::uint64_t user, std::uint32_t tag,
                        std::uint8_t antenna, double t,
                        std::uint16_t channel = 0, double phase = 0.0) {
  core::TagRead r;
  r.epc = rfid::Epc96::from_user_tag(user, tag);
  r.antenna_id = antenna;
  r.time_s = t;
  r.channel_index = channel;
  r.frequency_hz = 922.25e6;
  r.phase_rad = phase;
  r.rssi_dbm = -55.0;
  return r;
}

// FNV-1a over formatted event lines, the same fold fleet_soak uses for
// FleetSoakReport::event_log_hash.
std::uint64_t fnv1a_lines(const std::vector<std::string>& lines) {
  std::uint64_t hash = 14695981039346656037ull;
  for (const std::string& line : lines) {
    for (const char c : line) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ull;
    }
    hash ^= static_cast<unsigned char>('\n');
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

// ---------------------------------------------------------------------------
// FlatMap property tests vs a std::map reference.
// ---------------------------------------------------------------------------

TEST(FlatMapProperty, RandomizedOpsMatchStdMapReference) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1337ull}) {
    std::mt19937_64 rng(seed);
    common::FlatUserMap<std::uint64_t> flat;
    std::map<std::uint64_t, std::uint64_t> reference;
    std::uniform_int_distribution<std::uint64_t> key_dist(0, 1023);

    for (int op = 0; op < 20000; ++op) {
      const std::uint64_t key = key_dist(rng);
      switch (rng() % 4) {
        case 0:
        case 1: {  // insert / assign
          const std::uint64_t value = rng();
          flat[key] = value;
          reference[key] = value;
          break;
        }
        case 2: {  // erase
          EXPECT_EQ(flat.erase(key), reference.erase(key) > 0);
          break;
        }
        case 3: {  // lookup
          const std::uint64_t* hit = flat.find(key);
          const auto it = reference.find(key);
          ASSERT_EQ(hit != nullptr, it != reference.end())
              << "seed " << seed << " op " << op << " key " << key;
          if (hit != nullptr) {
            EXPECT_EQ(*hit, it->second);
          }
          EXPECT_EQ(flat.contains(key), hit != nullptr);
          break;
        }
      }
      if (op % 1000 == 999) {
        ASSERT_EQ(flat.size(), reference.size());
        std::vector<std::uint64_t> expected;
        expected.reserve(reference.size());
        for (const auto& [k, v] : reference) expected.push_back(k);
        EXPECT_EQ(flat.sorted_keys(), expected);
      }
    }

    // Final full-content check through the ordered view.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
    flat.for_each_ordered([&](const std::uint64_t& k, const std::uint64_t& v) {
      got.emplace_back(k, v);
    });
    std::vector<std::pair<std::uint64_t, std::uint64_t>> expected(
        reference.begin(), reference.end());
    EXPECT_EQ(got, expected) << "seed " << seed;
  }
}

TEST(FlatMapProperty, ShuffledInsertionCannotChangeOrderedView) {
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; k < 500; ++k) keys.push_back(k * 977 % 4096);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  std::vector<std::uint64_t> first_order;
  std::mt19937_64 rng(99);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::uint64_t> shuffled = keys;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    common::FlatUserMap<std::uint64_t> flat;
    for (const std::uint64_t k : shuffled) flat[k] = k * 3;

    std::vector<std::uint64_t> order;
    flat.for_each_ordered([&](const std::uint64_t& k, const std::uint64_t& v) {
      EXPECT_EQ(v, k * 3);
      order.push_back(k);
    });
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
    if (round == 0) {
      first_order = order;
    } else {
      EXPECT_EQ(order, first_order) << "round " << round;
    }
  }
}

TEST(FlatMapProperty, ChurnReusesSlotsWithoutFurtherRehash) {
  common::FlatUserMap<std::uint64_t> flat;
  for (std::uint64_t k = 0; k < 1000; ++k) flat[k] = k;
  const std::size_t cap = flat.capacity();
  const std::size_t rehashes = flat.rehashes();

  // Steady-state churn: backward-shift deletion leaves no tombstones, so
  // a bounded live set can never force another rehash.
  std::mt19937_64 rng(5);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t victim = rng() % 1000;
    flat.erase(victim);
    flat[victim] = victim;
  }
  EXPECT_EQ(flat.size(), 1000u);
  EXPECT_EQ(flat.capacity(), cap);
  EXPECT_EQ(flat.rehashes(), rehashes);
}

TEST(FlatMap, EraseIfRemovesExactlyThePredicatedKeys) {
  common::FlatUserMap<int> flat;
  for (std::uint64_t k = 0; k < 2000; ++k) flat[k] = static_cast<int>(k % 7);
  const std::size_t removed = flat.erase_if(
      [](const std::uint64_t&, const int& v) { return v == 3; });
  std::size_t expected_removed = 0;
  for (std::uint64_t k = 0; k < 2000; ++k) {
    if (k % 7 == 3) ++expected_removed;
  }
  EXPECT_EQ(removed, expected_removed);
  EXPECT_EQ(flat.size(), 2000 - expected_removed);
  flat.for_each([](const std::uint64_t&, const int& v) { EXPECT_NE(v, 3); });
}

TEST(FlatMap, StructKeysWithCustomHash) {
  common::FlatMap<core::StreamKey, int, core::StreamKeyHash> flat;
  for (std::uint64_t user = 1; user <= 40; ++user) {
    for (std::uint32_t tag = 0; tag < 3; ++tag) {
      flat[core::StreamKey{user, tag, static_cast<std::uint8_t>(tag % 2)}] =
          static_cast<int>(user * 10 + tag);
    }
  }
  EXPECT_EQ(flat.size(), 120u);
  const int* hit = flat.find(core::StreamKey{7, 2, 0});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 72);

  // The ordered view walks StreamKey::operator< order (user, tag, antenna).
  std::vector<core::StreamKey> order;
  flat.for_each_ordered(
      [&](const core::StreamKey& k, const int&) { order.push_back(k); });
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_EQ(order.size(), 120u);

  EXPECT_TRUE(flat.erase(core::StreamKey{7, 2, 0}));
  EXPECT_FALSE(flat.contains(core::StreamKey{7, 2, 0}));
  EXPECT_EQ(flat.size(), 119u);
}

TEST(FlatMap, ProbeAndFootprintAccountingAreSane) {
  common::FlatUserMap<std::uint64_t> flat;
  EXPECT_EQ(flat.max_probe_length(), 0u);
  for (std::uint64_t k = 0; k < 5000; ++k) flat[k] = k;
  // Robin-hood at <= 13/16 load keeps probe chains short; a triple-digit
  // max probe would mean the displacement logic is broken.
  EXPECT_GE(flat.max_probe_length(), 1u);
  EXPECT_LT(flat.max_probe_length(), 64u);
  EXPECT_GE(flat.capacity(), flat.size());
  EXPECT_GT(flat.table_bytes(), flat.capacity() * sizeof(std::uint64_t));
}

// ---------------------------------------------------------------------------
// SlabArena: stable addresses, generation-tagged handles, slot reuse.
// ---------------------------------------------------------------------------

TEST(SlabArena, AddressesStayStableAcrossGrowth) {
  common::SlabArena<std::string> arena;
  std::vector<common::SlabHandle> handles;
  std::vector<const std::string*> addresses;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(arena.emplace("value-" + std::to_string(i)));
    addresses.push_back(arena.get(handles.back()));
  }
  // Growing by whole slabs must never move existing slots.
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(arena.emplace("late-" + std::to_string(i)));
  }
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(arena.get(handles[i]), addresses[i]) << "slot " << i << " moved";
    EXPECT_EQ(*arena.get(handles[i]), "value-" + std::to_string(i));
  }
  EXPECT_EQ(arena.live(), 2000u);
}

TEST(SlabArena, StaleHandlesAreDetectedNotDereferenced) {
  common::SlabArena<int> arena;
  const common::SlabHandle h = arena.emplace(41);
  ASSERT_NE(arena.get(h), nullptr);
  EXPECT_TRUE(arena.release(h));

  // The released handle is dead: get() refuses, at() throws, and a second
  // release is a no-op instead of a double free.
  EXPECT_EQ(arena.get(h), nullptr);
  EXPECT_THROW(arena.at(h), std::logic_error);
  EXPECT_FALSE(arena.release(h));

  // Reusing the slot bumps the generation, so the new handle works while
  // the old one stays dead even though both name the same slot.
  const common::SlabHandle h2 = arena.emplace(99);
  EXPECT_EQ(h2.index, h.index);
  EXPECT_NE(h2.generation, h.generation);
  ASSERT_NE(arena.get(h2), nullptr);
  EXPECT_EQ(*arena.get(h2), 99);
  EXPECT_EQ(arena.get(h), nullptr);
}

TEST(SlabArena, FreeListServesChurnWithoutNewSlots) {
  common::SlabArena<std::uint64_t> arena;
  std::vector<common::SlabHandle> handles;
  for (std::uint64_t i = 0; i < 300; ++i) handles.push_back(arena.emplace(i));
  const std::size_t slots_after_fill = arena.slots();
  const std::size_t slabs_after_fill = arena.slab_count();
  EXPECT_EQ(slabs_after_fill, 2u);  // 300 slots across 256-slot slabs

  for (const common::SlabHandle& h : handles) EXPECT_TRUE(arena.release(h));
  EXPECT_EQ(arena.live(), 0u);

  handles.clear();
  for (std::uint64_t i = 0; i < 300; ++i) handles.push_back(arena.emplace(i));
  EXPECT_EQ(arena.slots(), slots_after_fill);
  EXPECT_EQ(arena.slab_count(), slabs_after_fill);
  EXPECT_EQ(arena.reuses(), 300u);
  EXPECT_EQ(arena.live(), 300u);
  EXPECT_GT(arena.occupancy(), 0.5);
}

TEST(SlabArena, ClearKeepsSlabsMappedAndReusesAscending) {
  common::SlabArena<int> arena;
  for (int i = 0; i < 600; ++i) arena.emplace(i);
  const std::size_t slabs = arena.slab_count();
  arena.clear();
  EXPECT_EQ(arena.live(), 0u);
  EXPECT_EQ(arena.slab_count(), slabs);

  // clear() rebuilds the free list so reuse walks slots in ascending
  // order — the first slab refills before the second is touched.
  const common::SlabHandle first = arena.emplace(1);
  const common::SlabHandle second = arena.emplace(2);
  EXPECT_EQ(first.index, 0u);
  EXPECT_EQ(second.index, 1u);
}

TEST(SlabArena, FreedSlotsArePoisonedUnderAsan) {
  if (!common::SlabArena<int>::poisons_freed_slots()) {
    GTEST_SKIP() << "not an ASan build; slot poisoning is compiled out";
  }
#if defined(TAGBREATHE_ASAN)
  common::SlabArena<int> arena;
  const common::SlabHandle h = arena.emplace(7);
  const void* slot = arena.slot_address_for_testing(h.index);
  EXPECT_FALSE(__asan_address_is_poisoned(slot));
  EXPECT_TRUE(arena.release(h));
  EXPECT_TRUE(__asan_address_is_poisoned(slot));

  // Reuse unpoisons exactly that slot again.
  const common::SlabHandle h2 = arena.emplace(8);
  ASSERT_EQ(h2.index, h.index);
  EXPECT_FALSE(__asan_address_is_poisoned(slot));
#endif
}

// ---------------------------------------------------------------------------
// StreamDemux on the arena: roster semantics and slot recycling.
// ---------------------------------------------------------------------------

TEST(DemuxCapacity, RosterTracksNonEmptyStreamsThroughEvictAndReappear) {
  core::StreamDemux demux;
  demux.add(make_read(1, 0, 0, 1.0));
  demux.add(make_read(2, 0, 0, 2.0));
  EXPECT_EQ(demux.users(), (std::vector<std::uint64_t>{1, 2}));

  // Aging out every read a user holds removes it from the roster even
  // though its registry entry (and arena slots) survive for reuse.
  demux.evict_before(1.5);
  EXPECT_EQ(demux.users(), (std::vector<std::uint64_t>{2}));

  // A fresh read brings the user straight back.
  demux.add(make_read(1, 0, 0, 3.0));
  EXPECT_EQ(demux.users(), (std::vector<std::uint64_t>{1, 2}));
}

TEST(DemuxCapacity, DropUserRecyclesArenaSlots) {
  core::StreamDemux demux;
  for (std::uint64_t user = 1; user <= 50; ++user) {
    demux.add(make_read(user, 0, 0, 1.0));
    demux.add(make_read(user, 1, 1, 1.0));
  }
  const std::size_t footprint_full = demux.footprint_bytes();
  EXPECT_GT(footprint_full, 0u);
  EXPECT_GT(demux.arena_occupancy(), 0.0);

  for (std::uint64_t user = 1; user <= 25; ++user) {
    EXPECT_EQ(demux.drop_user(user), 2u);
  }
  EXPECT_EQ(demux.users().size(), 25u);

  // New users take the freed slots instead of growing the arena.
  const std::size_t reuses_before = demux.arena_reuses();
  for (std::uint64_t user = 100; user < 125; ++user) {
    demux.add(make_read(user, 0, 0, 2.0));
    demux.add(make_read(user, 1, 1, 2.0));
  }
  EXPECT_GT(demux.arena_reuses(), reuses_before);
  // The arena did not grow a new slab for the replacements; footprint
  // stays near the 50-user level (registry metadata may wobble a little,
  // a leak would roughly double it).
  EXPECT_LE(demux.footprint_bytes(), footprint_full + footprint_full / 4);
}

// ---------------------------------------------------------------------------
// Ordering contracts on the pipeline: emission order is a function of
// user ids, never of registry iteration or insertion order.
// ---------------------------------------------------------------------------

namespace {

// Runs a small pipeline over a fixed read schedule, pushing same-time
// reads in the given user permutation, and returns the formatted event
// log. Every permutation must produce byte-identical output.
std::vector<std::string> run_permuted_pipeline(
    const std::vector<std::uint64_t>& user_order, std::size_t max_users = 0) {
  core::PipelineConfig config;
  config.window_s = 12.0;
  config.update_period_s = 4.0;
  config.warmup_s = 4.0;
  config.max_users = max_users;
  std::vector<std::string> log;
  core::RealtimePipeline pipeline(config, [&](const core::PipelineEvent& e) {
    log.push_back(core::format_soak_event(e));
  });
  pipeline.start_at(0.0);
  for (double t = 0.0; t < 40.0; t += 0.25) {
    for (const std::uint64_t user : user_order) {
      const double phase = 0.4 * std::sin(2.0 * 3.14159265358979 * t / 4.0 +
                                          static_cast<double>(user));
      pipeline.push(make_read(user, 0, 0, t, 0, phase));
    }
  }
  pipeline.advance_to(41.0);
  return log;
}

}  // namespace

TEST(PipelineOrdering, ShuffledInsertionOrderCannotChangeEmissionOrder) {
  std::vector<std::uint64_t> users = {3, 9, 1, 7, 5, 2, 8};
  std::sort(users.begin(), users.end());
  const std::vector<std::string> golden = run_permuted_pipeline(users);
  ASSERT_FALSE(golden.empty());

  std::mt19937_64 rng(17);
  for (int round = 0; round < 4; ++round) {
    std::shuffle(users.begin(), users.end(), rng);
    EXPECT_EQ(run_permuted_pipeline(users), golden)
        << "emission order leaked registry insertion order (round " << round
        << ")";
  }
}

TEST(PipelineOrdering, EvictionPicksLeastRecentThenLowestUserId) {
  core::PipelineConfig config;
  config.window_s = 12.0;
  config.update_period_s = 4.0;
  config.warmup_s = 4.0;
  config.max_users = 2;

  // Whatever order users 5 and 9 were admitted in, both saw their last
  // read at the same instant — the tie must break to the LOWEST id.
  for (const std::vector<std::uint64_t>& admit_order :
       {std::vector<std::uint64_t>{5, 9}, std::vector<std::uint64_t>{9, 5}}) {
    core::RealtimePipeline pipeline(config);
    pipeline.start_at(0.0);
    for (const std::uint64_t user : admit_order) {
      pipeline.push(make_read(user, 0, 0, 1.0));
    }
    ASSERT_EQ(pipeline.tracked_users(), 2u);
    pipeline.push(make_read(42, 0, 0, 2.0));
    EXPECT_EQ(pipeline.tracked_users(), 2u);
    EXPECT_EQ(pipeline.users_evicted(), 1u);
    // User 5 (lowest id among the tied pair) is the victim.
    EXPECT_FALSE(pipeline.tracks(5));
    EXPECT_TRUE(pipeline.tracks(9));
    EXPECT_TRUE(pipeline.tracks(42));
  }
}

TEST(PipelineOrdering, ExportStateListsUsersAscendingAfterShuffledPushes) {
  core::PipelineConfig config;
  config.window_s = 12.0;
  config.update_period_s = 4.0;
  config.warmup_s = 4.0;
  core::RealtimePipeline pipeline(config);
  pipeline.start_at(0.0);
  const std::vector<std::uint64_t> users = {14, 3, 77, 21, 8, 55, 1};
  for (const std::uint64_t user : users) {
    pipeline.push(make_read(user, 0, 0, 1.0));
  }
  // Cross one update boundary so last_seen_reads_ has per-user entries.
  pipeline.advance_to(5.0);
  const core::PipelineState state = pipeline.export_state();
  ASSERT_EQ(state.users.size(), users.size());
  for (std::size_t i = 1; i < state.users.size(); ++i) {
    EXPECT_LT(state.users[i - 1].user_id, state.users[i].user_id);
  }
  ASSERT_EQ(state.last_seen_reads.size(), users.size());
  for (std::size_t i = 1; i < state.last_seen_reads.size(); ++i) {
    EXPECT_LT(state.last_seen_reads[i - 1].first,
              state.last_seen_reads[i].first);
  }
}

// ---------------------------------------------------------------------------
// FFT flat plan cache: racing lookups while the table grows (TSan gate).
// ---------------------------------------------------------------------------

TEST(FlatPlanCacheConcurrency, RacingLookupsAreSafeWhileTableGrows) {
  signal::FftPlan::clear_cache();
  signal::RealFftPlan::clear_cache();

  // Enough distinct sizes that the flat table rehashes mid-race; the
  // per-cache mutex has to make both the probe and the growth atomic.
  std::vector<std::size_t> sizes;
  for (std::size_t n = 16; n <= 96; ++n) sizes.push_back(n);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      signal::FftScratch scratch;
      for (int round = 0; round < 4; ++round) {
        for (std::size_t i = 0; i < sizes.size(); ++i) {
          const std::size_t n = sizes[(i + static_cast<std::size_t>(t) * 11) %
                                      sizes.size()];
          const auto dir = (round + static_cast<int>(i)) % 2 == 0
                               ? signal::FftDirection::Forward
                               : signal::FftDirection::Inverse;
          const auto plan = signal::FftPlan::get(n, dir);
          if (plan == nullptr || plan->size() != n) {
            failures.fetch_add(1);
            continue;
          }
          std::vector<signal::cdouble> data(n, signal::cdouble{1.0, 0.0});
          plan->execute(data, scratch);
          // DC bin of an all-ones forward transform is N.
          if (dir == signal::FftDirection::Forward &&
              std::abs(data[0].real() - static_cast<double>(n)) > 1e-6) {
            failures.fetch_add(1);
          }
          if (n % 2 == 0) {
            const auto real_plan = signal::RealFftPlan::get(n);
            if (real_plan == nullptr || real_plan->size() != n) {
              failures.fetch_add(1);
            }
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(signal::FftPlan::cache_size(), 0u);
  EXPECT_LE(signal::FftPlan::cache_size(), 128u);
}

// ---------------------------------------------------------------------------
// Byte-identity gates: the container swap must be invisible in the
// event stream. Hashes below were captured on the pre-swap std::map
// build with the exact same configs; a mismatch means the flat
// registries or the arena changed observable ordering.
// ---------------------------------------------------------------------------

TEST(ByteIdentity, FleetChaosSoakEventHashMatchesPreSwapGolden) {
  fleet::FleetSoakConfig cfg;
  cfg.n_readers = 16;
  cfg.n_users = 10000;
  cfg.tags_per_user = 1;
  cfg.duration_s = 20.0;
  cfg.read_rate_hz = 1.0;
  cfg.fleet.n_shards = 8;
  cfg.fleet.shard_threads = 4;
  cfg.fleet.ingest.max_users = 0;
  cfg.fleet.pipeline.max_users = 0;
  cfg.fleet.pipeline.window_s = 12.0;
  cfg.fleet.pipeline.update_period_s = 4.0;
  cfg.fleet.pipeline.warmup_s = 4.0;
  cfg.fleet.parked_users_cap = 16384;
  cfg.roaming_users = 200;
  cfg.roam_period_s = 6.0;
  cfg.record_event_log = false;
  cfg.reader_chaos.push_back(core::ReaderChaosConfig::blackout(3, 6.0, 6.0, 3));
  cfg.reader_chaos.push_back(
      core::ReaderChaosConfig::flap(5, 2.0, 4.0, 3.0, 2, 5));

  const fleet::FleetSoakReport report = fleet::run_fleet_soak(cfg);
  EXPECT_TRUE(report.ok()) << "violations: " << report.violations.size();
  EXPECT_EQ(report.events, 50000u);
  EXPECT_EQ(report.event_log_hash, 0xc1fe874d3796520bull)
      << "10k-user fleet soak event log diverged from the pre-swap "
         "std::map golden run";
}

TEST(ByteIdentity, CoreChaosSoakEventHashMatchesPreSwapGolden) {
  core::SoakConfig cfg;
  cfg.n_users = 8;
  cfg.tags_per_user = 2;
  cfg.duration_s = 120.0;
  cfg.read_rate_hz = 8.0;
  cfg.chaos = core::ChaosConfig::composite(0xC0FFEE);
  cfg.ingest.max_users = 0;
  for (std::uint64_t user = 1; user <= 8; ++user) {
    cfg.ingest.monitored_users.push_back(user);
  }

  const core::SoakReport report = core::run_soak(cfg);
  EXPECT_TRUE(report.violations.empty())
      << "violations: " << report.violations.size();
  EXPECT_EQ(report.events, 848u);
  EXPECT_EQ(fnv1a_lines(report.event_log), 0xcbfd80f95ec71b76ull)
      << "composite-chaos soak event log diverged from the pre-swap "
         "std::map golden run";
}
