// Unit tests: rate estimation (Eq. 5, median-period window estimate,
// streaming tracker, FFT-peak baseline) and metrics (Eq. 8).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/units.hpp"
#include "core/metrics.hpp"
#include "core/rate_estimator.hpp"

namespace tagbreathe::core {
namespace {

using common::kTwoPi;
using signal::TimedSample;

std::vector<TimedSample> sine_signal(double freq, double fs,
                                     double duration) {
  std::vector<TimedSample> out;
  for (double t = 0.0; t < duration; t += 1.0 / fs)
    out.push_back({t, std::sin(kTwoPi * freq * t)});
  return out;
}

TEST(RateEstimator, ExactOnCleanSine) {
  // 0.2 Hz = 12 bpm.
  const auto breath = sine_signal(0.2, 20.0, 60.0);
  ZeroCrossingRateEstimator estimator;
  const auto est = estimator.estimate(breath);
  EXPECT_NEAR(est.rate_bpm, 12.0, 0.1);
  EXPECT_TRUE(est.reliable);
  // ~2 crossings per cycle * 12 cycles.
  EXPECT_NEAR(static_cast<double>(est.crossings.size()), 24.0, 2.0);
}

TEST(RateEstimator, Eq5InstantaneousValues) {
  // Crossings every 1.5 s -> breaths of 3 s -> 20 bpm; Eq. 5 with M = 7:
  // (7-1)/(2*(6*1.5)) Hz = 1/3 Hz = 20 bpm.
  const auto breath = sine_signal(1.0 / 3.0, 50.0, 40.0);
  ZeroCrossingRateEstimator estimator;
  const auto est = estimator.estimate(breath);
  ASSERT_FALSE(est.instantaneous.empty());
  for (const auto& p : est.instantaneous)
    EXPECT_NEAR(p.rate_bpm, 20.0, 0.5);
}

TEST(RateEstimator, MedianPeriodSurvivesMissingCrossings) {
  // Build crossing-like signal then blank out two breaths in the middle:
  // a plain count-over-span estimate would be biased; the median period
  // must not be.
  auto breath = sine_signal(0.2, 20.0, 60.0);
  for (auto& s : breath) {
    if (s.time_s > 20.0 && s.time_s < 30.0) s.value = 0.001;  // flatline
  }
  ZeroCrossingRateEstimator estimator;
  const auto est = estimator.estimate(breath);
  EXPECT_NEAR(est.rate_bpm, 12.0, 0.6);
}

TEST(RateEstimator, UnreliableWhenTooFewCrossings) {
  const auto breath = sine_signal(0.2, 20.0, 8.0);  // ~1.6 cycles
  ZeroCrossingRateEstimator estimator;
  const auto est = estimator.estimate(breath);
  EXPECT_FALSE(est.reliable);
}

TEST(RateEstimator, UnreliableOutsidePlausibleBand) {
  const auto breath = sine_signal(1.2, 30.0, 30.0);  // 72 bpm
  ZeroCrossingRateEstimator estimator;
  const auto est = estimator.estimate(breath);
  EXPECT_FALSE(est.reliable);
}

TEST(RateEstimator, ConfigValidation) {
  RateEstimatorConfig bad;
  bad.buffered_crossings = 1;
  EXPECT_THROW(ZeroCrossingRateEstimator{bad}, std::invalid_argument);
  EXPECT_THROW(StreamingRateTracker{bad}, std::invalid_argument);
}

TEST(StreamingTracker, Eq5AfterMCrossings) {
  RateEstimatorConfig cfg;  // M = 7
  StreamingRateTracker tracker(cfg);
  // Crossings every 2 s: rate = 6/(2*12) Hz = 0.25 Hz = 15 bpm.
  std::optional<RatePoint> point;
  for (int i = 0; i < 7; ++i) {
    point = tracker.push_crossing(2.0 * i);
    if (i < 6) {
      EXPECT_FALSE(point.has_value()) << i;
    }
  }
  ASSERT_TRUE(point.has_value());
  EXPECT_NEAR(point->rate_bpm, 15.0, 1e-9);
  EXPECT_NEAR(tracker.current_rate_bpm().value(), 15.0, 1e-9);
  // Sliding: the next crossing updates over the newest window.
  point = tracker.push_crossing(13.0);  // last gap 1 s (faster)
  ASSERT_TRUE(point.has_value());
  EXPECT_GT(point->rate_bpm, 15.0);
}

TEST(StreamingTracker, SilenceAndReset) {
  StreamingRateTracker tracker;
  EXPECT_DOUBLE_EQ(tracker.silence_s(5.0), 5.0);  // never crossed
  tracker.push_crossing(2.0);
  EXPECT_DOUBLE_EQ(tracker.silence_s(7.5), 5.5);
  tracker.reset();
  EXPECT_FALSE(tracker.current_rate_bpm().has_value());
}

TEST(FftPeak, RawBinQuantisesTo1OverWindow) {
  // 25 s window: bins every 2.4 bpm — a 13 bpm signal snaps to a bin.
  const auto track = sine_signal(13.0 / 60.0, 20.0, 25.0);
  FftPeakConfig cfg;
  cfg.raw_bin = true;
  const double est = fft_peak_rate_bpm(track, 20.0, cfg);
  // Bins sit at k * 60/25 = 2.4k bpm: 12.0 or 14.4.
  const double nearest_bin = std::round(est / 2.4) * 2.4;
  EXPECT_NEAR(est, nearest_bin, 1e-6);
  EXPECT_NEAR(est, 13.0, 2.4);  // within one bin of truth
}

TEST(FftPeak, InterpolationBeatsRawBin) {
  const auto track = sine_signal(13.0 / 60.0, 20.0, 25.0);
  FftPeakConfig raw;
  raw.raw_bin = true;
  FftPeakConfig interp;
  interp.raw_bin = false;
  const double err_raw = std::abs(fft_peak_rate_bpm(track, 20.0, raw) - 13.0);
  const double err_interp =
      std::abs(fft_peak_rate_bpm(track, 20.0, interp) - 13.0);
  EXPECT_LT(err_interp, err_raw + 1e-9);
  EXPECT_LT(err_interp, 0.5);
}

TEST(FftPeak, ShortTrackReturnsZero) {
  std::vector<TimedSample> tiny(4, TimedSample{});
  EXPECT_EQ(fft_peak_rate_bpm(tiny, 20.0, FftPeakConfig{}), 0.0);
}

// --- metrics ------------------------------------------------------------

TEST(Metrics, Eq8Accuracy) {
  EXPECT_DOUBLE_EQ(breathing_rate_accuracy(10.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(breathing_rate_accuracy(9.0, 10.0), 0.9);
  EXPECT_DOUBLE_EQ(breathing_rate_accuracy(11.0, 10.0), 0.9);
  EXPECT_DOUBLE_EQ(breathing_rate_accuracy(25.0, 10.0), 0.0);  // clamped
  EXPECT_DOUBLE_EQ(breathing_rate_accuracy(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(breathing_rate_accuracy(5.0, 0.0), 0.0);
}

TEST(Metrics, ErrorBpm) {
  EXPECT_DOUBLE_EQ(rate_error_bpm(12.5, 10.0), 2.5);
  EXPECT_DOUBLE_EQ(rate_error_bpm(8.0, 10.0), 2.0);
}

// The documented edge contract of Eq. 8 (src/core/metrics.hpp):
// true_bpm <= 0 scores exact-match only, NaN propagates, and every
// finite result lies in [0, 1].
TEST(Metrics, Eq8ZeroAndNegativeTruth) {
  EXPECT_DOUBLE_EQ(breathing_rate_accuracy(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(breathing_rate_accuracy(0.0, -4.0), 1.0);
  EXPECT_DOUBLE_EQ(breathing_rate_accuracy(5.0, -4.0), 0.0);
  EXPECT_DOUBLE_EQ(breathing_rate_accuracy(-5.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(breathing_rate_accuracy(-5.0, -5.0), 0.0);  // not 1: != 0
}

TEST(Metrics, Eq8NegativeEstimateClampsToZero) {
  EXPECT_DOUBLE_EQ(breathing_rate_accuracy(-10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(breathing_rate_accuracy(-0.1, 10.0), 0.0);
}

TEST(Metrics, Eq8NanPropagates) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(breathing_rate_accuracy(nan, 10.0)));
  EXPECT_TRUE(std::isnan(breathing_rate_accuracy(10.0, nan)));
  EXPECT_TRUE(std::isnan(breathing_rate_accuracy(nan, nan)));
  EXPECT_TRUE(std::isnan(rate_error_bpm(nan, 10.0)));
  EXPECT_TRUE(std::isnan(rate_error_bpm(10.0, nan)));
}

TEST(Metrics, Eq8FiniteResultsStayInUnitInterval) {
  const double inf = std::numeric_limits<double>::infinity();
  // A sweep of finite extremes never escapes [0, 1].
  for (double est : {-1e12, -1.0, 0.0, 1e-9, 10.0, 1e12}) {
    for (double truth : {1e-9, 1.0, 10.0, 1e12}) {
      const double acc = breathing_rate_accuracy(est, truth);
      EXPECT_GE(acc, 0.0) << est << " vs " << truth;
      EXPECT_LE(acc, 1.0) << est << " vs " << truth;
    }
  }
  // Infinite estimate against finite truth clamps rather than escaping.
  EXPECT_DOUBLE_EQ(breathing_rate_accuracy(inf, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(breathing_rate_accuracy(-inf, 10.0), 0.0);
}

TEST(Metrics, MeanAccuracy) {
  std::vector<double> est{10.0, 9.0};
  std::vector<double> truth{10.0, 10.0};
  EXPECT_NEAR(mean_accuracy(est, truth), 0.95, 1e-12);
  EXPECT_THROW(mean_accuracy(est, std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_EQ(mean_accuracy({}, {}), 0.0);
}

}  // namespace
}  // namespace tagbreathe::core
