// Unit + integration tests: the EPC mapping table (Sec. IV-C fallback)
// and Gen2 SELECT masking.
#include <gtest/gtest.h>

#include <memory>

#include "body/subject.hpp"
#include "common/units.hpp"
#include "core/demux.hpp"
#include "core/monitor.hpp"
#include "core/tag_registry.hpp"
#include "experiments/runner.hpp"
#include "rfid/reader.hpp"

namespace tagbreathe {
namespace {

// --- registry ------------------------------------------------------------

TEST(TagRegistry, RegisterLookupUnregister) {
  core::TagRegistry registry;
  const auto factory =
      *rfid::Epc96::from_hex("e28011700000020f12345678");
  EXPECT_FALSE(registry.lookup(factory).has_value());

  registry.register_tag(factory, 42, 3);
  const auto id = registry.lookup(factory);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(id->user_id, 42u);
  EXPECT_EQ(id->tag_id, 3u);
  EXPECT_EQ(registry.size(), 1u);

  // Re-registration overwrites (tag moved to another user).
  registry.register_tag(factory, 7, 1);
  EXPECT_EQ(registry.lookup(factory)->user_id, 7u);
  EXPECT_EQ(registry.size(), 1u);

  EXPECT_TRUE(registry.unregister_tag(factory));
  EXPECT_FALSE(registry.unregister_tag(factory));
  EXPECT_TRUE(registry.empty());
}

TEST(TagRegistry, DemuxResolvesThroughRegistry) {
  core::TagRegistry registry;
  const auto tag_a = *rfid::Epc96::from_hex("e280117000000000000000aa");
  const auto tag_b = *rfid::Epc96::from_hex("e280117000000000000000bb");
  const auto unknown = *rfid::Epc96::from_hex("e280117000000000000000cc");
  registry.register_tag(tag_a, 1, 1);
  registry.register_tag(tag_b, 1, 2);

  core::StreamDemux demux;
  demux.set_registry(&registry);
  auto push = [&demux](const rfid::Epc96& epc, double t) {
    core::TagRead r;
    r.epc = epc;
    r.time_s = t;
    r.antenna_id = 1;
    demux.add(r);
  };
  push(tag_a, 0.0);
  push(tag_b, 0.1);
  push(unknown, 0.2);  // unregistered item tag: ignored
  push(tag_a, 0.3);

  EXPECT_EQ(demux.accepted_reads(), 3u);
  EXPECT_EQ(demux.ignored_reads(), 1u);
  EXPECT_EQ(demux.users(), (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(demux.streams_for_user(1).size(), 2u);  // two mapped tags
}

TEST(TagRegistry, EndToEndWithFactoryEpcs) {
  // Tags keep arbitrary factory EPCs; only the registry knows who wears
  // what. The pipeline must work identically to the Fig. 9 scheme.
  body::SubjectConfig sc;
  sc.user_id = 1;  // the simulator still needs an identity for geometry
  sc.position = {3.0, 0.0, 0.0};
  sc.heading_rad = common::kPi;
  auto subject = std::make_unique<body::Subject>(
      sc, body::BreathingModel(body::MetronomeSchedule(11.0), {}));

  const rfid::Epc96 factory[3] = {
      *rfid::Epc96::from_hex("30395dfa833114a000000001"),
      *rfid::Epc96::from_hex("30395dfa833114a0000e4d02"),
      *rfid::Epc96::from_hex("30395dfa833114a0007a1c03"),
  };
  core::TagRegistry registry;
  std::vector<std::unique_ptr<rfid::TagBehavior>> tags;
  for (int i = 0; i < 3; ++i) {
    tags.push_back(std::make_unique<rfid::BodyTag>(
        factory[i], subject.get(),
        body::Subject::all_sites()[static_cast<std::size_t>(i)]));
    registry.register_tag(factory[i], /*user=*/55,
                          static_cast<std::uint32_t>(i + 1));
  }
  rfid::ReaderConfig rc;
  rc.seed = 61;
  rfid::ReaderSim sim(rc, std::move(tags));
  const auto reads = sim.run(90.0);

  core::StreamDemux demux;
  demux.set_registry(&registry);
  demux.add(reads);
  core::BreathMonitor monitor;
  const auto analysis = monitor.analyze_user(demux, 55, reads.front().time_s,
                                             reads.back().time_s);
  EXPECT_EQ(analysis.user_id, 55u);
  EXPECT_EQ(analysis.streams_used, 3u);
  EXPECT_NEAR(analysis.rate.rate_bpm, 11.0, 1.0);
}

// --- Gen2 SELECT ------------------------------------------------------------

TEST(Select, MaskedTagsNeverReply) {
  rfid::Gen2Mac mac(4);
  mac.set_select_mask({true, false, true, false});
  common::Rng rng(5);
  std::vector<int> reads(4, 0);
  double t = 0.0;
  while (t < 5.0) {
    const auto slot = mac.step(std::vector<bool>(4, true),
                               [](std::size_t) { return 1.0; }, rng);
    t += slot.duration_s;
    if (slot.kind == rfid::SlotKind::Success)
      ++reads[static_cast<std::size_t>(slot.tag_index)];
  }
  EXPECT_GT(reads[0], 50);
  EXPECT_GT(reads[2], 50);
  EXPECT_EQ(reads[1], 0);
  EXPECT_EQ(reads[3], 0);
}

TEST(Select, MaskValidationAndClear) {
  rfid::Gen2Mac mac(2);
  EXPECT_THROW(mac.set_select_mask({true}), std::invalid_argument);
  mac.set_select_mask({false, false});
  common::Rng rng(6);
  // Nothing selected: pure idle.
  const auto slot = mac.step({true, true}, [](std::size_t) { return 1.0; },
                             rng);
  EXPECT_EQ(slot.kind, rfid::SlotKind::Idle);
  // Empty mask selects everything again.
  mac.set_select_mask({});
  const auto slot2 = mac.step({true, true}, [](std::size_t) { return 1.0; },
                              rng);
  EXPECT_EQ(slot2.kind, rfid::SlotKind::Query);
}

TEST(Select, RestoresMonitoringRateUnderContention) {
  experiments::ScenarioConfig cfg;
  cfg.distance_m = 2.0;
  cfg.contending_tags = 30;
  cfg.duration_s = 30.0;
  cfg.seed = 62;

  cfg.select_monitoring_only = false;
  const auto open = experiments::run_trial(cfg);
  cfg.select_monitoring_only = true;
  const auto masked = experiments::run_trial(cfg);

  EXPECT_LT(open.monitor_read_rate_hz, 15.0);
  EXPECT_GT(masked.monitor_read_rate_hz, 45.0);
  // And the item tags truly vanish from the air.
  EXPECT_NEAR(masked.read_rate_hz, masked.monitor_read_rate_hz, 1e-9);
}

}  // namespace
}  // namespace tagbreathe
