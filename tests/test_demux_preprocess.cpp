// Unit tests: stream demux and phase preprocessing (Eqs. 3-4).
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/demux.hpp"
#include "core/phase_preprocess.hpp"
#include "rfid/channel_plan.hpp"
#include "rfid/phase_model.hpp"

namespace tagbreathe::core {
namespace {

TagRead make_read(std::uint64_t user, std::uint32_t tag,
                  std::uint8_t antenna, double t, std::uint16_t channel = 0,
                  double phase = 0.0) {
  TagRead r;
  r.epc = rfid::Epc96::from_user_tag(user, tag);
  r.antenna_id = antenna;
  r.time_s = t;
  r.channel_index = channel;
  r.frequency_hz = 922.25e6;
  r.phase_rad = phase;
  r.rssi_dbm = -55.0;
  return r;
}

// --- demux ----------------------------------------------------------------

TEST(Demux, GroupsByUserTagAntenna) {
  StreamDemux demux;
  demux.add(make_read(1, 1, 1, 0.0));
  demux.add(make_read(1, 1, 1, 0.1));
  demux.add(make_read(1, 2, 1, 0.2));
  demux.add(make_read(1, 1, 2, 0.3));
  demux.add(make_read(2, 1, 1, 0.4));

  EXPECT_EQ(demux.users(), (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(demux.streams_for_user(1).size(), 3u);  // (1,1), (2,1), (1,2)
  EXPECT_EQ(demux.streams_for_user(2).size(), 1u);
  EXPECT_EQ(demux.streams_for_user_antenna(1, 1).size(), 2u);
  EXPECT_EQ(demux.antennas_for_user(1),
            (std::vector<std::uint8_t>{1, 2}));
  EXPECT_EQ(demux.accepted_reads(), 5u);
}

TEST(Demux, FiltersUnmonitoredUsers) {
  StreamDemux demux({1, 3});
  demux.add(make_read(1, 1, 1, 0.0));
  demux.add(make_read(2, 1, 1, 0.1));  // item tag: not monitored
  demux.add(make_read(3, 1, 1, 0.2));
  EXPECT_EQ(demux.accepted_reads(), 2u);
  EXPECT_EQ(demux.ignored_reads(), 1u);
  EXPECT_EQ(demux.users(), (std::vector<std::uint64_t>{1, 3}));
}

TEST(Demux, EvictBeforeDropsOldReads) {
  StreamDemux demux;
  for (int i = 0; i < 10; ++i) demux.add(make_read(1, 1, 1, i * 1.0));
  demux.evict_before(5.0);
  const auto streams = demux.streams_for_user(1);
  ASSERT_EQ(streams.size(), 1u);
  EXPECT_EQ(streams[0]->size(), 5u);
  EXPECT_DOUBLE_EQ(streams[0]->front().time_s, 5.0);
}

TEST(Demux, ClearResets) {
  StreamDemux demux;
  demux.add(make_read(1, 1, 1, 0.0));
  demux.clear();
  EXPECT_TRUE(demux.users().empty());
  EXPECT_EQ(demux.total_reads(), 0u);
}

// --- preprocessing -----------------------------------------------------------

/// Builds a synthetic noise-free stream: a tag oscillating radially with
/// known displacement, read at `fs` Hz on a hopping channel plan, using
/// the exact Eq. 1 phase.
std::vector<TagRead> synthetic_stream(
    const std::function<double(double)>& displacement, double fs,
    double duration_s) {
  const rfid::ChannelPlan plan = rfid::ChannelPlan::paper_plan();
  rfid::HopSchedule hops(plan, 3);
  rfid::PhaseModel phase{rfid::PhaseModelConfig{}};
  std::vector<TagRead> reads;
  for (double t = 0.0; t < duration_s; t += 1.0 / fs) {
    const auto ch = hops.channel_at(t);
    TagRead r = make_read(1, 1, 1, t, static_cast<std::uint16_t>(ch));
    r.frequency_hz = plan.frequency_hz(ch);
    const double d = 3.0 + displacement(t);
    r.phase_rad = phase.ideal_phase(d, plan.wavelength_m(ch), ch, 99);
    reads.push_back(r);
  }
  return reads;
}

TEST(Preprocess, RecoversDisplacementExactlyWithoutNoise) {
  const auto disp = [](double t) {
    return 0.005 * std::sin(common::kTwoPi * 0.2 * t);
  };
  const auto reads = synthetic_stream(disp, 60.0, 20.0);
  PhasePreprocessor pre;
  const auto deltas = pre.process(reads);
  const auto track = integrate_displacement(deltas);
  ASSERT_GT(track.size(), 500u);
  // The integrated track must match the true displacement *change* to
  // numerical precision wherever the chain is unbroken within dwells.
  // Accumulated hop-gap losses are bounded by breathing motion during
  // the dropped inter-dwell deltas.
  double max_err = 0.0;
  for (const auto& s : track) {
    const double truth = disp(s.time_s) - disp(reads.front().time_s);
    max_err = std::max(max_err, std::abs(s.value - truth));
  }
  EXPECT_LT(max_err, 0.002);  // sub-2mm track fidelity, no noise
}

TEST(Preprocess, Eq3SignAndScale) {
  // Two same-channel readings with a known distance change: Δd must be
  // λ/(4π)·Δθ.
  const double lambda = common::wavelength_m(922.25e6);
  rfid::PhaseModel phase{rfid::PhaseModelConfig{}};
  const double d0 = 2.0, d1 = 2.0 + 0.004;
  TagRead a = make_read(1, 1, 1, 0.0, 5,
                        phase.ideal_phase(d0, lambda, 5, 1));
  TagRead b = make_read(1, 1, 1, 0.016, 5,
                        phase.ideal_phase(d1, lambda, 5, 1));
  // A 4 mm step in 16 ms is a deliberate unphysical jump to exercise the
  // arithmetic; switch off the despike gate that exists to reject it.
  PreprocessConfig cfg;
  cfg.spike_floor_m = 0.0;
  PhasePreprocessor pre(cfg);
  signal::TimedSample delta;
  EXPECT_FALSE(pre.push(a, delta));  // first reading in channel
  ASSERT_TRUE(pre.push(b, delta));
  EXPECT_NEAR(delta.value, 0.004, 1e-9);
  EXPECT_DOUBLE_EQ(delta.time_s, 0.016);
}

TEST(Preprocess, ChannelChangeDoesNotProduceDelta) {
  PhasePreprocessor pre;
  signal::TimedSample delta;
  EXPECT_FALSE(pre.push(make_read(1, 1, 1, 0.0, 1, 1.0), delta));
  EXPECT_FALSE(pre.push(make_read(1, 1, 1, 0.016, 2, 2.0), delta));
  EXPECT_EQ(pre.stats().first_in_channel, 2u);
  // Back on channel 1 shortly after: pairs with the first reading.
  EXPECT_TRUE(pre.push(make_read(1, 1, 1, 0.032, 1, 1.1), delta));
}

TEST(Preprocess, WrapsPhaseDeltaAcross2Pi) {
  // The wrapped step maps to ~3.4 mm in 16 ms — over the despike budget,
  // which is not what this test is about.
  PreprocessConfig cfg;
  cfg.spike_floor_m = 0.0;
  PhasePreprocessor pre(cfg);
  signal::TimedSample delta;
  // 6.2 -> 0.05 is a +0.133 rad step through the wrap, not -6.15.
  EXPECT_FALSE(pre.push(make_read(1, 1, 1, 0.0, 0, 6.2), delta));
  ASSERT_TRUE(pre.push(make_read(1, 1, 1, 0.016, 0, 0.05), delta));
  const double lambda = 299792458.0 / 922.25e6;
  EXPECT_NEAR(delta.value,
              lambda / (4.0 * common::kPi) *
                  common::wrap_phase_pi(0.05 - 6.2),
              1e-12);
  EXPECT_GT(delta.value, 0.0);
}

TEST(Preprocess, DropsLongGaps) {
  PreprocessConfig cfg;
  cfg.adaptive_gap = false;
  cfg.max_same_channel_gap_s = 0.3;
  PhasePreprocessor pre(cfg);
  signal::TimedSample delta;
  EXPECT_FALSE(pre.push(make_read(1, 1, 1, 0.0, 0, 1.0), delta));
  EXPECT_FALSE(pre.push(make_read(1, 1, 1, 1.0, 0, 1.1), delta));  // gap 1 s
  EXPECT_EQ(pre.stats().dropped_gap, 1u);
  // The new reading still updates the anchor: a quick follow-up pairs.
  EXPECT_TRUE(pre.push(make_read(1, 1, 1, 1.016, 0, 1.15), delta));
}

TEST(Preprocess, DropsOutlierSpeeds) {
  PreprocessConfig cfg;
  cfg.adaptive_gap = false;
  PhasePreprocessor pre(cfg);
  signal::TimedSample delta;
  EXPECT_FALSE(pre.push(make_read(1, 1, 1, 0.0, 0, 0.0), delta));
  // Phase jump of ~3 rad in 16 ms -> ~0.5 m/s apparent speed: outlier.
  EXPECT_FALSE(pre.push(make_read(1, 1, 1, 0.016, 0, 3.0), delta));
  EXPECT_EQ(pre.stats().dropped_outlier, 1u);
}

TEST(Preprocess, AdaptiveGapFastStreamUsesStrictWindow) {
  PreprocessConfig cfg;  // adaptive on
  PhasePreprocessor pre(cfg);
  signal::TimedSample delta;
  // 60 Hz stream: after warm-up the effective gap must be the strict one.
  double t = 0.0;
  for (int i = 0; i < 40; ++i) {
    pre.push(make_read(1, 1, 1, t, static_cast<std::uint16_t>(0), 1.0),
             delta);
    t += 1.0 / 60.0;
  }
  EXPECT_DOUBLE_EQ(pre.effective_gap_s(), cfg.max_same_channel_gap_s);
}

TEST(Preprocess, AdaptiveGapSlowStreamUsesFallback) {
  PreprocessConfig cfg;
  PhasePreprocessor pre(cfg);
  signal::TimedSample delta;
  double t = 0.0;
  for (int i = 0; i < 40; ++i) {
    pre.push(make_read(1, 1, 1, t, static_cast<std::uint16_t>(i % 10), 1.0),
             delta);
    t += 0.4;  // 2.5 Hz stream
  }
  EXPECT_DOUBLE_EQ(pre.effective_gap_s(), cfg.fallback_gap_s);
}

TEST(Preprocess, ResetClearsState) {
  PhasePreprocessor pre;
  signal::TimedSample delta;
  pre.push(make_read(1, 1, 1, 0.0, 0, 1.0), delta);
  pre.reset();
  EXPECT_EQ(pre.stats().reads_in, 0u);
  // First read after reset is first-in-channel again.
  EXPECT_FALSE(pre.push(make_read(1, 1, 1, 0.016, 0, 1.1), delta));
}

TEST(Preprocess, IntegrationIsCumulative) {
  std::vector<signal::TimedSample> deltas{
      {0.1, 1.0}, {0.2, -0.5}, {0.3, 0.25}};
  const auto track = integrate_displacement(deltas);
  ASSERT_EQ(track.size(), 3u);
  EXPECT_DOUBLE_EQ(track[0].value, 1.0);
  EXPECT_DOUBLE_EQ(track[1].value, 0.5);
  EXPECT_DOUBLE_EQ(track[2].value, 0.75);
}

}  // namespace
}  // namespace tagbreathe::core
